//! One-sided remote memory access: `rput` / `rget`, scalar and bulk.
//!
//! Every operation performs the dynamic locality check the paper discusses:
//! a directly-addressable target takes the shared-memory bypass (the data
//! movement completes synchronously, making eager notification possible);
//! any other target is injected into the simulated network and always
//! completes asynchronously. Under 2021.3.0 semantics the bypass path
//! additionally performs the extra heap allocation that snapshot 2021.3.6
//! eliminated (`legacy_extra_alloc`).

use std::sync::Arc;

use std::sync::Mutex;

use crate::completion::{operation_cx, Completions, CxValue, Notifier, RemoteFn};
use crate::ctx::RankCtx;
use crate::future::Future;
use crate::global_ptr::{GlobalPtr, SegValue};
use crate::runtime::Upcr;
use crate::stats::bump;
use crate::trace::OpKind;

/// Emulates the per-operation internal allocation that UPC++ 2021.3.0
/// performed on the directly-addressable RMA path (removed in the 2021.3.6
/// snapshot). Sized like the internal operation descriptor it stands for.
#[inline(never)]
fn legacy_extra_alloc(ctx: &RankCtx) {
    bump(&ctx.stats.legacy_extra_allocs);
    let b: Box<[u64; 6]> = Box::new([0; 6]);
    std::hint::black_box(&b);
}

/// Enqueue remote-completion RPCs to the target after a local transfer.
fn post_remote_rpcs_local(ctx: &RankCtx, target: gasnex::Rank, rpcs: Vec<RemoteFn>) {
    for f in rpcs {
        ctx.world.send_am(target, ctx.me, move |_| f());
    }
}

impl Upcr {
    /// Asynchronous scalar put with default (future) completion.
    ///
    /// ```
    /// upcr::launch(upcr::RuntimeConfig::smp(2), |u| {
    ///     let p = u.new_::<u64>(0);
    ///     let f = u.rput(7, p);
    ///     assert!(f.is_ready()); // local target + eager default
    ///     assert_eq!(u.rget(p).wait(), 7);
    ///     u.barrier();
    /// });
    /// ```
    pub fn rput<T: SegValue>(&self, val: T, dst: GlobalPtr<T>) -> Future<()> {
        self.rput_with(val, dst, operation_cx::as_future())
    }

    /// Asynchronous scalar put with an explicit completions object.
    pub fn rput_with<T: SegValue, C: Completions<()>>(
        &self,
        val: T,
        dst: GlobalPtr<T>,
        mut cx: C,
    ) -> C::Out {
        let ctx = &*self.ctx;
        debug_assert!(!dst.is_null(), "rput to null global pointer");
        bump(&ctx.stats.rputs);
        let top = ctx.trace_op_init(OpKind::Put, true);
        let mut rpcs = Vec::new();
        cx.take_remote(&mut rpcs);
        if ctx.addressable(dst.rank()) {
            // Shared-memory bypass: data movement completes synchronously.
            if !ctx.version.has_alloc_elision() {
                legacy_extra_alloc(ctx);
            }
            ctx.world
                .segment(dst.rank())
                .write_scalar(dst.offset(), T::SIZE, val.to_bits());
            post_remote_rpcs_local(ctx, dst.rank(), rpcs);
            cx.notify(&Notifier::sync(ctx, top, ()))
        } else {
            bump(&ctx.stats.net_injected);
            let core = gasnex::EventCore::new();
            let (rank, off, bits) = (dst.rank(), dst.offset(), val.to_bits());
            let src = ctx.me;
            let core2 = Arc::clone(&core);
            // Fine-grained scalar put: eligible for sender-side aggregation.
            ctx.inject_routed(
                rank,
                top,
                Box::new(move |w| {
                    w.segment(rank).write_scalar(off, T::SIZE, bits);
                    for f in rpcs {
                        w.send_am(rank, src, move |_| f());
                    }
                    core2.signal();
                }),
            );
            cx.notify(&Notifier::pending(
                ctx,
                top,
                core,
                Arc::new(Mutex::new(Some(()))),
            ))
        }
    }

    /// Asynchronous scalar get with default (future) completion.
    pub fn rget<T: SegValue + CxValue>(&self, src: GlobalPtr<T>) -> Future<T> {
        self.rget_with(src, operation_cx::as_future())
    }

    /// Asynchronous scalar get with an explicit completions object.
    pub fn rget_with<T: SegValue + CxValue, C: Completions<T>>(
        &self,
        src: GlobalPtr<T>,
        mut cx: C,
    ) -> C::Out {
        let ctx = &*self.ctx;
        debug_assert!(!src.is_null(), "rget from null global pointer");
        bump(&ctx.stats.rgets);
        let top = ctx.trace_op_init(OpKind::Get, true);
        let mut rpcs = Vec::new();
        cx.take_remote(&mut rpcs);
        assert!(
            rpcs.is_empty(),
            "remote_cx completions are not supported on rget"
        );
        if ctx.addressable(src.rank()) {
            if !ctx.version.has_alloc_elision() {
                legacy_extra_alloc(ctx);
            }
            let v = T::from_bits(
                ctx.world
                    .segment(src.rank())
                    .read_scalar(src.offset(), T::SIZE),
            );
            cx.notify(&Notifier::sync(ctx, top, v))
        } else {
            bump(&ctx.stats.net_injected);
            let core = gasnex::EventCore::new();
            let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
            let (rank, off) = (src.rank(), src.offset());
            let core2 = Arc::clone(&core);
            let slot2 = Arc::clone(&slot);
            let msg = ctx.world.net_inject(Box::new(move |w| {
                let v = T::from_bits(w.segment(rank).read_scalar(off, T::SIZE));
                *slot2.lock().unwrap() = Some(v);
                core2.signal();
            }));
            ctx.trace_net_inject(top, msg);
            cx.notify(&Notifier::pending(ctx, top, core, slot))
        }
    }

    /// Bulk put: copy `src` into consecutive elements starting at `dst`,
    /// with default (future) completion.
    pub fn rput_slice<T: SegValue>(&self, src: &[T], dst: GlobalPtr<T>) -> Future<()> {
        self.rput_slice_with(src, dst, operation_cx::as_future())
    }

    /// Bulk put with an explicit completions object. The source slice is
    /// captured by copy at initiation, so source completion is immediate.
    pub fn rput_slice_with<T: SegValue, C: Completions<()>>(
        &self,
        src: &[T],
        dst: GlobalPtr<T>,
        mut cx: C,
    ) -> C::Out {
        let ctx = &*self.ctx;
        bump(&ctx.stats.rputs);
        let top = ctx.trace_op_init(OpKind::Put, true);
        let mut rpcs = Vec::new();
        cx.take_remote(&mut rpcs);
        if ctx.addressable(dst.rank()) {
            if !ctx.version.has_alloc_elision() {
                legacy_extra_alloc(ctx);
            }
            let seg = ctx.world.segment(dst.rank());
            for (i, v) in src.iter().enumerate() {
                seg.write_scalar(dst.offset() + i * T::SIZE, T::SIZE, v.to_bits());
            }
            post_remote_rpcs_local(ctx, dst.rank(), rpcs);
            cx.notify(&Notifier::sync(ctx, top, ()))
        } else {
            bump(&ctx.stats.net_injected);
            let core = gasnex::EventCore::new();
            let data: Vec<T> = src.to_vec();
            let (rank, off) = (dst.rank(), dst.offset());
            let me = ctx.me;
            let core2 = Arc::clone(&core);
            let msg = ctx.world.net_inject(Box::new(move |w| {
                let seg = w.segment(rank);
                for (i, v) in data.iter().enumerate() {
                    seg.write_scalar(off + i * T::SIZE, T::SIZE, v.to_bits());
                }
                for f in rpcs {
                    w.send_am(rank, me, move |_| f());
                }
                core2.signal();
            }));
            ctx.trace_net_inject(top, msg);
            cx.notify(&Notifier::pending(
                ctx,
                top,
                core,
                Arc::new(Mutex::new(Some(()))),
            ))
        }
    }

    /// One-sided copy of `n` elements between global pointers (the
    /// `upcxx::copy` idiom), with default (future) completion.
    ///
    /// The destination lives in shared memory, so — unlike a get into a
    /// local buffer — completion is value-less. This is what lets a batch of
    /// gets be tracked by a single promise (or conjoined unit futures): the
    /// fetched data lands in the caller's shared scratch space, not in the
    /// notification.
    /// ```
    /// upcr::launch(upcr::RuntimeConfig::smp(1), |u| {
    ///     let a = u.new_array::<u64>(4);
    ///     let b = u.new_array::<u64>(4);
    ///     u.rput_slice(&[1, 2, 3, 4u64], a).wait();
    ///     u.copy(a, b, 4).wait();
    ///     assert_eq!(u.rget_vec(b, 4).wait(), vec![1, 2, 3, 4]);
    /// });
    /// ```
    pub fn copy<T: SegValue>(&self, src: GlobalPtr<T>, dst: GlobalPtr<T>, n: usize) -> Future<()> {
        self.copy_with(src, dst, n, operation_cx::as_future())
    }

    /// One-sided copy with an explicit completions object.
    pub fn copy_with<T: SegValue, C: Completions<()>>(
        &self,
        src: GlobalPtr<T>,
        dst: GlobalPtr<T>,
        n: usize,
        mut cx: C,
    ) -> C::Out {
        let ctx = &*self.ctx;
        bump(&ctx.stats.rgets);
        let top = ctx.trace_op_init(OpKind::Get, true);
        let mut rpcs = Vec::new();
        cx.take_remote(&mut rpcs);
        let copy_now = move |w: &gasnex::World| {
            let (ssec, dsec) = (w.segment(src.rank()), w.segment(dst.rank()));
            for i in 0..n {
                let bits = ssec.read_scalar(src.offset() + i * T::SIZE, T::SIZE);
                dsec.write_scalar(dst.offset() + i * T::SIZE, T::SIZE, bits);
            }
        };
        if ctx.addressable(src.rank()) && ctx.addressable(dst.rank()) {
            if !ctx.version.has_alloc_elision() {
                legacy_extra_alloc(ctx);
            }
            copy_now(&ctx.world);
            post_remote_rpcs_local(ctx, dst.rank(), rpcs);
            cx.notify(&Notifier::sync(ctx, top, ()))
        } else {
            bump(&ctx.stats.net_injected);
            let core = gasnex::EventCore::new();
            let core2 = Arc::clone(&core);
            let me = ctx.me;
            let dst_rank = dst.rank();
            let msg = ctx.world.net_inject(Box::new(move |w| {
                copy_now(w);
                for f in rpcs {
                    w.send_am(dst_rank, me, move |_| f());
                }
                core2.signal();
            }));
            ctx.trace_net_inject(top, msg);
            cx.notify(&Notifier::pending(
                ctx,
                top,
                core,
                Arc::new(Mutex::new(Some(()))),
            ))
        }
    }

    /// Bulk get of `n` elements starting at `src`, yielding the data in the
    /// completion value, with default (future) completion.
    pub fn rget_vec<T: SegValue>(&self, src: GlobalPtr<T>, n: usize) -> Future<Vec<T>> {
        self.rget_vec_with(src, n, operation_cx::as_future())
    }

    /// Bulk get with an explicit completions object.
    pub fn rget_vec_with<T: SegValue, C: Completions<Vec<T>>>(
        &self,
        src: GlobalPtr<T>,
        n: usize,
        mut cx: C,
    ) -> C::Out {
        let ctx = &*self.ctx;
        bump(&ctx.stats.rgets);
        let top = ctx.trace_op_init(OpKind::Get, true);
        let mut rpcs = Vec::new();
        cx.take_remote(&mut rpcs);
        assert!(
            rpcs.is_empty(),
            "remote_cx completions are not supported on rget"
        );
        if ctx.addressable(src.rank()) {
            if !ctx.version.has_alloc_elision() {
                legacy_extra_alloc(ctx);
            }
            let seg = ctx.world.segment(src.rank());
            let data: Vec<T> = (0..n)
                .map(|i| T::from_bits(seg.read_scalar(src.offset() + i * T::SIZE, T::SIZE)))
                .collect();
            cx.notify(&Notifier::sync(ctx, top, data))
        } else {
            bump(&ctx.stats.net_injected);
            let core = gasnex::EventCore::new();
            let slot: Arc<Mutex<Option<Vec<T>>>> = Arc::new(Mutex::new(None));
            let (rank, off) = (src.rank(), src.offset());
            let core2 = Arc::clone(&core);
            let slot2 = Arc::clone(&slot);
            let msg = ctx.world.net_inject(Box::new(move |w| {
                let seg = w.segment(rank);
                let data: Vec<T> = (0..n)
                    .map(|i| T::from_bits(seg.read_scalar(off + i * T::SIZE, T::SIZE)))
                    .collect();
                *slot2.lock().unwrap() = Some(data);
                core2.signal();
            }));
            ctx.trace_net_inject(top, msg);
            cx.notify(&Notifier::pending(ctx, top, core, slot))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::{launch, RuntimeConfig};

    fn one_rank(f: impl Fn(&crate::Upcr) + Sync) {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 18), f);
    }

    #[test]
    fn scalar_roundtrip_every_width() {
        one_rank(|u| {
            let a = u.new_::<u8>(0);
            let b = u.new_::<u16>(0);
            let c = u.new_::<u32>(0);
            let d = u.new_::<u64>(0);
            u.rput(0x12u8, a).wait();
            u.rput(0x1234u16, b).wait();
            u.rput(0x1234_5678u32, c).wait();
            u.rput(0x1234_5678_9ABC_DEF0u64, d).wait();
            assert_eq!(u.rget(a).wait(), 0x12);
            assert_eq!(u.rget(b).wait(), 0x1234);
            assert_eq!(u.rget(c).wait(), 0x1234_5678);
            assert_eq!(u.rget(d).wait(), 0x1234_5678_9ABC_DEF0);
        });
    }

    #[test]
    fn copy_shifts_within_one_segment() {
        one_rank(|u| {
            let arr = u.new_array::<u64>(8);
            let data: Vec<u64> = (10..18).collect();
            u.rput_slice(&data, arr).wait();
            u.copy(arr, arr.add(4), 4).wait();
            assert_eq!(u.rget_vec(arr.add(4), 4).wait(), vec![10, 11, 12, 13]);
        });
    }

    #[test]
    fn slice_roundtrip_narrow_type() {
        one_rank(|u| {
            let arr = u.new_array::<i16>(10);
            let data: Vec<i16> = (-5..5).collect();
            u.rput_slice(&data, arr).wait();
            assert_eq!(u.rget_vec(arr, 10).wait(), data);
        });
    }

    #[test]
    fn legacy_alloc_counted_per_op_kind() {
        launch(
            RuntimeConfig::smp(1)
                .with_version(crate::LibVersion::V2021_3_0)
                .with_segment_size(1 << 18),
            |u| {
                let a = u.new_::<u64>(0);
                u.reset_stats();
                u.rput(1, a).wait();
                u.rget(a).wait();
                u.copy(a, a, 1).wait();
                u.rput_slice(&[1u64], a).wait();
                u.rget_vec(a, 1).wait();
                assert_eq!(u.stats().legacy_extra_allocs, 5);
            },
        );
    }
}
