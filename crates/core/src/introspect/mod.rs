//! Runtime introspection: live snapshots, the wait-for graph, and the
//! stall watchdog's diagnosis builder.
//!
//! Three consumers share this module:
//!
//! * **Live snapshots** ([`Upcr::snapshot`](crate::Upcr::snapshot)) — a
//!   point-in-time dump of everything currently *pending* on a rank: open
//!   operation spans with their reconstructed lifecycle phase, aggregation
//!   buckets with occupancy and age, in-flight conduit messages with retry
//!   state, and the world's notification words with waiter masks and
//!   posted-but-unconsumed badge bits. Rendered as deterministic text and
//!   JSON (fixed field order, no map iteration), so two same-seed runs
//!   produce byte-identical snapshots at quiescence.
//! * **The wait-for graph** ([`wait_graph`]) — the blocking structure of
//!   the job right now: who is parked on which notification word, and
//!   which wire messages would satisfy whom. Edges follow the taxonomy in
//!   [`WaitEdgeKind`] (see `DESIGN.md` §16).
//! * **The stall watchdog** ([`diagnose_stall`]) — when a parked
//!   `wait_signal` outlives the configured watchdog
//!   ([`RuntimeConfig::with_watchdog_ms`](crate::RuntimeConfig::with_watchdog_ms)),
//!   it walks the wait graph and the conduit's retained wire trace (the
//!   "flight recorder") to produce a diagnosis naming the blocked rank,
//!   the edge it waits on, the candidate carrier messages still on the
//!   wire, and the last wire event touching that edge — instead of the
//!   bare "deadlock" panic of earlier revisions.

use std::fmt::Write as _;

use gasnex::net::NetEventKind;
use gasnex::{BucketSnapshot, InFlight, NetTraceEvent, NotifyWordSnapshot, World};

use crate::ctx::RankCtx;
use crate::trace::OpenSpan;

/// A point-in-time dump of one rank's pending work plus the world-global
/// wire and notification state, captured by [`crate::Upcr::snapshot`].
///
/// Dynamic sections (`pending_ops`, `agg_buckets`, `inflight`) are empty at
/// quiescence; `notify_words` retains posted-but-unconsumed badge bits, so
/// a quiesced snapshot is a pure function of the program's communication
/// pattern — the property the snapshot-determinism tests pin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The capturing rank.
    pub rank: u32,
    /// Total ranks in the world.
    pub ranks: u32,
    /// The rank's Lamport clock at capture time (PR 9). Zero on untraced
    /// runs — the clocks only tick while tracing — so quiesced-snapshot
    /// byte-identity is unaffected by the causal subsystem existing.
    pub lclock: u64,
    /// Open (initiated but not yet notified) operation spans, with the
    /// lifecycle phase reconstructed from the trace ring. Empty when
    /// tracing is off (spans are only recorded while tracing).
    pub pending_ops: Vec<OpenSpan>,
    /// Occupied or in-flight aggregation buckets on this rank.
    pub agg_buckets: Vec<BucketSnapshot>,
    /// Messages currently inside the conduit (scheduled deliveries and
    /// retransmission timers), world-global.
    pub inflight: Vec<InFlight>,
    /// Non-idle notification words across all ranks: badge bits present
    /// and/or a waiter registered.
    pub notify_words: Vec<NotifyWordSnapshot>,
}

impl Snapshot {
    /// Capture the current state from a rank context. `pending_ops` and
    /// `agg_buckets` are rank-local; `inflight` and `notify_words` are
    /// world-global.
    pub(crate) fn capture(ctx: &RankCtx) -> Snapshot {
        let now = ctx.trace_now_ns();
        let clocks = ctx.world.clocks();
        Snapshot {
            rank: ctx.me.0,
            ranks: ctx.world.ranks() as u32,
            lclock: clocks.peek(clocks.slot_for(Some(ctx.me.0))),
            pending_ops: ctx.tracer.borrow().open_spans(),
            agg_buckets: ctx
                .agg
                .lock()
                .unwrap()
                .as_ref()
                .map(|a| a.snapshot_buckets(now))
                .unwrap_or_default(),
            inflight: ctx.world.net().inflight(),
            notify_words: ctx.world.notify().snapshot(),
        }
    }

    /// Deterministic human-readable rendering: fixed section order, one
    /// line per item, no absolute "now" timestamp.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "=== upcr snapshot: rank {}/{} ===",
            self.rank, self.ranks
        );
        let _ = writeln!(s, "lamport clock: {}", self.lclock);
        let _ = writeln!(s, "pending ops: {}", self.pending_ops.len());
        for op in &self.pending_ops {
            let kind = op.kind.map_or("?", |k| k.name());
            let _ = write!(s, "  op {} kind {} phase {}", op.id, kind, op.phase);
            match op.wire_msg {
                Some(m) => {
                    let _ = writeln!(s, " wire-msg {m}");
                }
                None => {
                    let _ = writeln!(s);
                }
            }
        }
        let _ = writeln!(s, "agg buckets: {}", self.agg_buckets.len());
        for b in &self.agg_buckets {
            let _ = writeln!(
                s,
                "  target {} occupancy {} age-ns {} inflight {}",
                b.target, b.occupancy, b.age_ns, b.inflight
            );
        }
        let _ = writeln!(s, "in-flight messages: {}", self.inflight.len());
        for f in &self.inflight {
            let _ = write!(
                s,
                "  msg {} attempt {}{}",
                f.msg,
                f.attempt,
                if f.retransmit { " (retransmit)" } else { "" }
            );
            match f.route {
                Some((src, dst)) => {
                    let _ = writeln!(s, " route {src}->{dst}");
                }
                None => {
                    let _ = writeln!(s);
                }
            }
        }
        let _ = writeln!(s, "notify words: {}", self.notify_words.len());
        for w in &self.notify_words {
            let _ = write!(s, "  rank {} word {} bits {:#x}", w.rank, w.word, w.bits);
            match w.waiter_mask {
                Some(m) => {
                    let _ = writeln!(s, " waiter-mask {m:#x}");
                }
                None => {
                    let _ = writeln!(s, " (no waiter)");
                }
            }
        }
        s
    }

    /// Deterministic JSON rendering (`snapshot.v1`): hand-built with fixed
    /// field order, parseable by [`crate::trace::parse_json`].
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"schema\":\"snapshot.v1\",\"rank\":{},\"ranks\":{},\"lclock\":{},\"pending_ops\":[",
            self.rank, self.ranks, self.lclock
        );
        for (i, op) in self.pending_ops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"id\":{},\"kind\":", op.id);
            match op.kind {
                Some(k) => {
                    let _ = write!(s, "\"{}\"", k.name());
                }
                None => s.push_str("null"),
            }
            let _ = write!(s, ",\"phase\":\"{}\",\"wire_msg\":", op.phase);
            match op.wire_msg {
                Some(m) => {
                    let _ = write!(s, "{m}");
                }
                None => s.push_str("null"),
            }
            s.push('}');
        }
        s.push_str("],\"agg_buckets\":[");
        for (i, b) in self.agg_buckets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"target\":{},\"occupancy\":{},\"age_ns\":{},\"inflight\":{}}}",
                b.target, b.occupancy, b.age_ns, b.inflight
            );
        }
        s.push_str("],\"inflight\":[");
        for (i, f) in self.inflight.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"msg\":{},\"attempt\":{},\"retransmit\":{},\"route\":",
                f.msg, f.attempt, f.retransmit
            );
            match f.route {
                Some((src, dst)) => {
                    let _ = write!(s, "[{src},{dst}]");
                }
                None => s.push_str("null"),
            }
            s.push('}');
        }
        s.push_str("],\"notify_words\":[");
        for (i, w) in self.notify_words.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"rank\":{},\"word\":{},\"bits\":{},\"waiter_mask\":",
                w.rank, w.word, w.bits
            );
            match w.waiter_mask {
                Some(m) => {
                    let _ = write!(s, "{m}");
                }
                None => s.push_str("null"),
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// What a wait-graph edge waits *on* — the edge taxonomy of DESIGN.md §16.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitEdgeKind {
    /// A rank blocked in `wait_signal` on one of its notification words:
    /// satisfied by any badge post intersecting `mask`. `posted` is the
    /// subset of `mask` already in the word but not yet consumed (non-zero
    /// means the waiter is about to wake — not a stall).
    NotifyWait { word: usize, mask: u64, posted: u64 },
    /// A message inside the conduit whose delivery action runs on arrival
    /// at the destination rank — the only thing that can still post a
    /// badge there from off-node.
    WireDelivery {
        msg: u64,
        attempt: u32,
        retransmit: bool,
    },
}

/// One edge of the wait-for graph: `waiter` blocks until `source` (when
/// known) acts through `kind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitEdge {
    /// The rank that cannot make progress until this edge resolves.
    pub waiter: u32,
    /// The rank expected to resolve it: the message's source for wire
    /// edges, unknown (`None`) for a notify wait — any rank may post.
    pub source: Option<u32>,
    pub kind: WaitEdgeKind,
}

/// Build the current wait-for graph: one `NotifyWait` edge per registered
/// notification waiter, one `WireDelivery` edge per in-flight conduit
/// message with a known route. Deterministic order: notify edges by
/// (rank, word), wire edges in the conduit's canonical in-flight order.
pub fn wait_graph(world: &World) -> Vec<WaitEdge> {
    let mut edges = Vec::new();
    for w in world.notify().snapshot() {
        if let Some(mask) = w.waiter_mask {
            edges.push(WaitEdge {
                waiter: w.rank,
                source: None,
                kind: WaitEdgeKind::NotifyWait {
                    word: w.word,
                    mask,
                    posted: w.bits & mask,
                },
            });
        }
    }
    for f in world.net().inflight() {
        if let Some((src, dst)) = f.route {
            edges.push(WaitEdge {
                waiter: dst,
                source: Some(src),
                kind: WaitEdgeKind::WireDelivery {
                    msg: f.msg,
                    attempt: f.attempt,
                    retransmit: f.retransmit,
                },
            });
        }
    }
    edges
}

fn describe_wire_event(ev: &NetTraceEvent) -> String {
    let what = match ev.kind {
        NetEventKind::Inject => "injected".to_string(),
        NetEventKind::Drop { backoff_ns } => {
            format!("dropped by the fault plan (backoff {backoff_ns}ns)")
        }
        NetEventKind::Retry => "retransmission timer fired".to_string(),
        NetEventKind::Deliver => "delivered".to_string(),
        NetEventKind::DupDiscard => "duplicate copy discarded".to_string(),
        NetEventKind::Signal { rank, token } => {
            format!("completion signal routed to rank {rank} (token {token})")
        }
    };
    format!("msg {} attempt {}: {}", ev.msg, ev.attempt, what)
}

/// Build the watchdog's stall diagnosis for a rank that outlived its park
/// timeout in `wait_signal` on (`word`, `mask`).
///
/// The text names, in order: the blocked rank and the exact wait-graph
/// edge it sits on; the full wait graph (who else is blocked, what is
/// still on the wire); the candidate carrier messages routed *to* the
/// blocked rank; and the last flight-recorder event touching one of those
/// carriers (or, when nothing is in flight toward the rank, the last wire
/// event at all). Apart from flight-recorder timestamps being omitted, the
/// text is a pure function of the stalled state — a seeded stall yields
/// the same diagnosis every run.
pub fn diagnose_stall(world: &World, rank: u32, word: usize, mask: u64, waited_ms: u64) -> String {
    let posted = world
        .notify()
        .snapshot()
        .iter()
        .find(|w| w.rank == rank && w.word == word)
        .map_or(0, |w| w.bits & mask);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "wait-graph stall: rank {rank} blocked {waited_ms}ms in wait_signal on \
         notify word {word} mask {mask:#x} (posted-but-unconsumed bits of mask: {posted:#x})"
    );
    let edges = wait_graph(world);
    let _ = writeln!(s, "wait-graph edges ({}):", edges.len());
    for e in &edges {
        match e.kind {
            WaitEdgeKind::NotifyWait { word, mask, posted } => {
                let _ = writeln!(
                    s,
                    "  rank {} --[notify word {} mask {:#x}]--> {}",
                    e.waiter,
                    word,
                    mask,
                    if posted != 0 {
                        format!("satisfied (posted {posted:#x})")
                    } else {
                        "unsatisfied (no badge posted)".to_string()
                    }
                );
            }
            WaitEdgeKind::WireDelivery {
                msg,
                attempt,
                retransmit,
            } => {
                let _ = writeln!(
                    s,
                    "  rank {} --[wire msg {} attempt {}{}]--> rank {}",
                    e.source.map_or("?".to_string(), |r| r.to_string()),
                    msg,
                    attempt,
                    if retransmit { " retransmit" } else { "" },
                    e.waiter
                );
            }
        }
    }
    // Carriers: in-flight messages routed to the blocked rank — the only
    // traffic that can still satisfy the wait from off-node.
    let inflight = world.net().inflight();
    let carriers: Vec<&InFlight> = inflight
        .iter()
        .filter(|f| f.route.is_some_and(|(_, dst)| dst == rank))
        .collect();
    if carriers.is_empty() {
        let _ = writeln!(
            s,
            "no message in flight toward rank {rank}: nothing on the wire can satisfy this wait"
        );
    } else {
        let _ = writeln!(s, "candidate carriers in flight toward rank {rank}:");
        for f in &carriers {
            let (src, _) = f.route.unwrap();
            let _ = writeln!(
                s,
                "  msg {} from rank {} (attempt {}{})",
                f.msg,
                src,
                f.attempt,
                if f.retransmit {
                    ", retransmit pending"
                } else {
                    ""
                }
            );
        }
    }
    // Flight recorder: the last wire event touching a carrier (preferred),
    // else the last wire event at all. Empty when wire tracing is off.
    let trace = world.net().peek_trace();
    let last = trace
        .iter()
        .rev()
        .find(|ev| carriers.iter().any(|f| f.msg == ev.msg))
        .or_else(|| trace.last());
    match last {
        Some(ev) => {
            let _ = writeln!(
                s,
                "flight recorder: last wire event touching this edge: {}",
                describe_wire_event(ev)
            );
        }
        None => {
            let _ = writeln!(
                s,
                "flight recorder: empty (enable tracing to retain wire events)"
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{launch, RuntimeConfig};
    use crate::trace::parse_json;

    #[test]
    fn quiesced_snapshot_has_empty_dynamic_sections() {
        let snaps = launch(RuntimeConfig::smp(2).with_segment_size(1 << 14), |u| {
            let p = u.new_::<u64>(0);
            u.rput(7u64, p).wait();
            u.barrier();
            u.snapshot()
        });
        for (r, snap) in snaps.iter().enumerate() {
            assert_eq!(snap.rank, r as u32);
            assert_eq!(snap.ranks, 2);
            assert!(snap.pending_ops.is_empty(), "no open spans after wait");
            assert!(snap.agg_buckets.is_empty(), "agg off by default");
            assert!(snap.inflight.is_empty(), "smp bypass never hits the wire");
        }
    }

    #[test]
    fn snapshot_sees_unconsumed_badge_and_renders_it() {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 14), |u| {
            let p = u.new_::<u64>(0);
            u.put_signal(1u64, p, 2, 0b101).wait();
            let snap = u.snapshot();
            assert_eq!(snap.notify_words.len(), 1);
            let w = snap.notify_words[0];
            assert_eq!((w.rank, w.word, w.bits, w.waiter_mask), (0, 2, 0b101, None));
            let text = snap.render_text();
            assert!(
                text.contains("rank 0 word 2 bits 0x5 (no waiter)"),
                "{text}"
            );
            let json = snap.render_json();
            let v = parse_json(&json).expect("snapshot JSON parses");
            assert_eq!(
                v.get("schema").and_then(|s| s.as_str()),
                Some("snapshot.v1")
            );
            let words = v.get("notify_words").and_then(|w| w.as_arr()).unwrap();
            assert_eq!(words.len(), 1);
            assert_eq!(words[0].get("bits").and_then(|b| b.as_num()), Some(5.0));
            // Drain the badge so quiesce-side state is clean.
            assert_eq!(u.wait_signal(2, u64::MAX), 0b101);
            u.barrier();
        });
    }

    #[test]
    fn wait_graph_is_empty_when_nothing_blocks() {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 14), |u| {
            assert!(wait_graph(u.world()).is_empty());
            u.barrier();
        });
    }
}
