//! Remote procedure calls.
//!
//! `rpc` ships a closure to the target rank, where it executes during that
//! rank's progress engine; the returned future is readied on the initiator
//! when the reply arrives. `rpc_ff` is the fire-and-forget form. Because
//! all ranks share one address space, the "serialization" of the callable
//! is a boxed `FnOnce` (see DESIGN.md); replies carry the result as a
//! type-erased `Any` payload matched back to its continuation by id.
//!
//! RPCs never complete synchronously — even a self-targeted RPC is queued
//! and runs in a later progress call, exactly as in UPC++.

use std::rc::Rc;

use gasnex::{AmCtx, Rank, World};

use crate::completion::CxValue;
use crate::ctx::deliver_reply;
use crate::future::cell::new_cell;
use crate::future::Future;
use crate::runtime::Upcr;
use crate::stats::bump;
use crate::trace::{CompletionPath, OpKind};

/// Route an AM to `target`: directly when addressable, through the
/// simulated network otherwise. Returns the network message id when the
/// request crossed the simulated wire.
fn send_am_routed(
    world: &World,
    me: Rank,
    target: Rank,
    direct: bool,
    handler: impl FnOnce(&AmCtx<'_>) + Send + 'static,
) -> Option<u64> {
    if direct {
        world.send_am(target, me, handler);
        None
    } else {
        Some(world.net_inject(Box::new(move |w| w.send_am(target, me, handler))))
    }
}

impl Upcr {
    /// Execute `f` on `target`, returning a future for its result.
    ///
    /// The callable runs inside the target's progress engine; it may
    /// initiate communication but must not block (no `wait`/`barrier`).
    pub fn rpc<F, R>(&self, target: Rank, f: F) -> Future<R>
    where
        F: FnOnce() -> R + Send + 'static,
        R: CxValue,
    {
        let ctx = &*self.ctx;
        bump(&ctx.stats.rpcs);
        // RPC notifications always take the deferred path: even self-
        // targeted RPCs are queued, so the reply can never be eager.
        let top = ctx.trace_op_init(OpKind::Rpc, true);
        let cell = new_cell::<R>(1);
        let c2 = Rc::clone(&cell);
        let id = ctx.register_reply(Box::new(move |payload| {
            let v = *payload
                .downcast::<R>()
                .expect("rpc reply payload type mismatch");
            c2.set_value(v);
            c2.fulfill(1);
            crate::ctx::trace_notify(top, CompletionPath::Deferred);
        }));
        let direct = ctx.addressable(target);
        if !direct {
            bump(&ctx.stats.net_injected);
        }
        let msg = send_am_routed(&ctx.world, ctx.me, target, direct, move |amctx| {
            let r = f();
            let (src, me) = (amctx.src, amctx.me);
            let reply = move |_: &AmCtx<'_>| deliver_reply(id, Box::new(r));
            // The reply crosses the network iff the request did.
            if amctx.world.topology().same_node(me, src) {
                amctx.world.send_am(src, me, reply);
            } else {
                amctx
                    .world
                    .net_inject(Box::new(move |w| w.send_am(src, me, reply)));
            }
        });
        if let Some(msg) = msg {
            ctx.trace_net_inject(top, msg);
        }
        Future::from_cell(cell)
    }

    /// RPC in the fully faithful UPC++ transport style: a plain function
    /// plus **serialized** arguments. The argument tuple is encoded to
    /// bytes at initiation (so the caller's buffers are immediately
    /// reusable), crosses the (simulated) network as bytes, and is decoded
    /// on the target; the result returns the same way.
    ///
    /// Prefer this over [`rpc`](Self::rpc) when modelling wire traffic
    /// matters; `rpc` ships a boxed closure, which is only possible because
    /// all ranks share one address space.
    pub fn rpc_args<A, R>(&self, target: Rank, f: fn(A) -> R, args: A) -> Future<R>
    where
        A: crate::ser::SerDe + Send + 'static,
        R: crate::completion::CxValue + crate::ser::SerDe,
    {
        let ctx = &*self.ctx;
        bump(&ctx.stats.rpcs);
        let top = ctx.trace_op_init(OpKind::Rpc, true);
        let arg_bytes = args.to_bytes();
        let cell = new_cell::<R>(1);
        let c2 = Rc::clone(&cell);
        let id = ctx.register_reply(Box::new(move |payload| {
            let bytes = payload
                .downcast::<Vec<u8>>()
                .expect("rpc_args reply payload must be bytes");
            let r = R::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("rpc_args reply deserialization failed: {e}"));
            c2.set_value(r);
            c2.fulfill(1);
            crate::ctx::trace_notify(top, CompletionPath::Deferred);
        }));
        let direct = ctx.addressable(target);
        if !direct {
            bump(&ctx.stats.net_injected);
        }
        let msg = send_am_routed(&ctx.world, ctx.me, target, direct, move |amctx| {
            let a = A::from_bytes(&arg_bytes)
                .unwrap_or_else(|e| panic!("rpc_args argument deserialization failed: {e}"));
            let result_bytes = f(a).to_bytes();
            let (src, me) = (amctx.src, amctx.me);
            let reply = move |_: &AmCtx<'_>| deliver_reply(id, Box::new(result_bytes));
            if amctx.world.topology().same_node(me, src) {
                amctx.world.send_am(src, me, reply);
            } else {
                amctx
                    .world
                    .net_inject(Box::new(move |w| w.send_am(src, me, reply)));
            }
        });
        if let Some(msg) = msg {
            ctx.trace_net_inject(top, msg);
        }
        Future::from_cell(cell)
    }

    /// Fire-and-forget RPC: execute `f` on `target` with no completion
    /// notification back to the initiator.
    pub fn rpc_ff<F>(&self, target: Rank, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let ctx = &*self.ctx;
        bump(&ctx.stats.rpcs);
        // No completion ever comes back, so the span is closed at init.
        let top = ctx.trace_op_init(OpKind::Rpc, false);
        let direct = ctx.addressable(target);
        if !direct {
            bump(&ctx.stats.net_injected);
        }
        if let Some(msg) = send_am_routed(&ctx.world, ctx.me, target, direct, move |_| f()) {
            ctx.trace_net_inject(top, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{launch, RuntimeConfig};

    #[test]
    fn rpc_chains_on_reply() {
        launch(RuntimeConfig::smp(2).with_segment_size(1 << 16), |u| {
            if u.rank_me() == 0 {
                let doubled = u.rpc(Rank(1), || 21u64).then(|v| v * 2);
                assert_eq!(doubled.wait(), 42);
            }
            u.barrier();
        });
    }

    #[test]
    fn rpc_body_may_communicate() {
        launch(RuntimeConfig::smp(2).with_segment_size(1 << 16), |u| {
            let mine = u.new_::<u64>(7 + u.rank_me() as u64);
            let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
            u.barrier();
            if u.rank_me() == 0 {
                let p0 = ptrs[0];
                // The body runs on rank 1 and reads rank 0's cell via an
                // eager local rget (both on one node).
                let v = u
                    .rpc(Rank(1), move || crate::runtime::api::rget(p0).wait())
                    .wait();
                assert_eq!(v, 7);
            }
            u.barrier();
        });
    }

    #[test]
    fn many_concurrent_rpcs_resolve() {
        launch(RuntimeConfig::smp(4).with_segment_size(1 << 16), |u| {
            let futs: Vec<_> = (0..64u64)
                .map(|i| {
                    let t = Rank(((u.rank_me() as u64 + i) % 4) as u32);
                    u.rpc(t, move || i * i)
                })
                .collect();
            for (i, f) in futs.into_iter().enumerate() {
                assert_eq!(f.wait(), (i * i) as u64);
            }
            u.barrier();
        });
    }
}
