//! Per-rank runtime statistics.
//!
//! Counters for the internal events the paper's optimizations target —
//! promise-cell heap allocations, deferred-queue traffic, eager
//! notifications, dependency-graph nodes. Tests use them to prove that an
//! optimization *structurally* removed work (e.g. "an eager local `rput`
//! allocates zero cells"), independent of timing noise.
//!
//! These counters are per-rank. The simulated network's counters —
//! including the chaos-mode reliability layer (`retries`, `drops_injected`,
//! `dup_suppressed`, `max_backoff_ns`) — are world-global and live in
//! [`gasnex::NetStats`], reachable via `Upcr::net_stats`.
//!
//! The field set is declared exactly once, in the [`per_rank_stats!`]
//! invocation below: the macro generates `Stats`, `StatsSnapshot`,
//! `snapshot()`, `reset()`, and `since()` together, so adding a counter in
//! one place cannot silently skip any of them. Each field is classed as a
//! `counter` (monotonic; `since` subtracts) or a `gauge` (a level such as a
//! high-water mark; `since` reports the later sample unchanged).

use std::sync::atomic::{AtomicU64, Ordering};

pub use gasnex::FieldClass;

/// `since` semantics for one field class: counters subtract (saturating),
/// gauges pass the later sample through — a high-water mark is a level,
/// not a count, so callers see the peak over the run.
macro_rules! since_field {
    (counter, $later:expr, $earlier:expr) => {
        $later.saturating_sub($earlier)
    };
    (gauge, $later:expr, $earlier:expr) => {
        $later
    };
}

/// Map the lowercase class keyword used in the field list to [`FieldClass`].
macro_rules! field_class {
    (counter) => {
        FieldClass::Counter
    };
    (gauge) => {
        FieldClass::Gauge
    };
}

/// Declare the per-rank statistics fields once; generate the mutable
/// [`Stats`] struct, the public [`StatsSnapshot`] copy (with the given doc
/// comments), and the `snapshot`/`reset`/`since` triplet from the same
/// list.
macro_rules! per_rank_stats {
    ($( $(#[$doc:meta])* $name:ident : $class:ident ),+ $(,)?) => {
        /// Mutable per-rank counters. Owned by the rank context but shared
        /// (behind an `Arc`) with the optional background progress thread,
        /// which attributes callback runs and its own poll/wakeup counts to
        /// the rank they belong to — hence atomics. All accesses are
        /// `Relaxed`: the counters are statistics, not synchronization.
        #[derive(Default)]
        pub(crate) struct Stats {
            $( pub $name: AtomicU64, )+
        }

        impl Stats {
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.load(Ordering::Relaxed), )+
                }
            }

            pub fn reset(&self) {
                $( self.$name.store(0, Ordering::Relaxed); )+
            }
        }

        /// A point-in-time copy of one rank's runtime counters.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $( $(#[$doc])* pub $name: u64, )+
        }

        impl StatsSnapshot {
            /// Field names and classes, in declaration order. This is the
            /// registration hook the metrics registry consumes: the names
            /// here become metric names, and the order here is the order of
            /// the values returned by [`StatsSnapshot::values`].
            pub const FIELDS: &'static [(&'static str, FieldClass)] = &[
                $( (stringify!($name), field_class!($class)), )+
            ];

            /// Field values in the same order as [`StatsSnapshot::FIELDS`].
            pub fn values(&self) -> Vec<u64> {
                vec![ $( self.$name, )+ ]
            }

            /// Field-wise difference (`self - earlier`): counters subtract
            /// (saturating at zero); gauges report the later sample
            /// unchanged.
            pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: since_field!($class, self.$name, earlier.$name), )+
                }
            }
        }
    };
}

per_rank_stats! {
    /// Internal promise cells heap-allocated (futures machinery).
    cell_allocs: counter,
    /// Extra per-operation allocations on the legacy 2021.3.0 RMA path.
    legacy_extra_allocs: counter,
    /// Notifications routed through the deferred progress queue.
    deferred_enqueued: counter,
    /// Notifications delivered eagerly at initiation.
    eager_notifications: counter,
    /// Operations injected into the simulated network (off-node traffic).
    net_injected: counter,
    /// RMA puts initiated.
    rputs: counter,
    /// RMA gets initiated.
    rgets: counter,
    /// Atomic operations initiated.
    amos: counter,
    /// RPCs initiated.
    rpcs: counter,
    /// `when_all`/conjoin calls resolved by the ready-input fast path.
    when_all_fast: counter,
    /// Dependency-graph nodes constructed by `when_all`/conjoin.
    when_all_nodes: counter,
    /// Progress-engine quanta executed.
    progress_calls: counter,
    /// Deferred notifications delivered via a ready-queue token (the
    /// signal-driven engine): each is one wakeup that replaced a poll scan.
    event_wakeups: counter,
    /// Event re-tests the signal-driven engine skipped: per quantum, the
    /// number of still-pending event waiters the poll-scan engine would
    /// have re-tested and re-queued.
    polls_elided: counter,
    /// High-water mark of simultaneously pending notifications (registered
    /// event waiters plus queued rank-local deferred entries).
    pending_highwater: gauge,
    /// Put/amo-with-signal operations initiated.
    signals_sent: counter,
    /// Signal badges that OR-coalesced into an already-Active notification
    /// word on this rank (delivery-side; attributed to the target rank).
    signals_coalesced: counter,
    /// Times a `wait_signal` park on this rank was woken by a badge.
    park_wakeups: counter,
    /// Progress polls performed by `wait_signal` while it *wanted* to park
    /// (refused reservation or virtual clock). A parked rank contributes
    /// zero — the idle-CPU guarantee the bench gate checks.
    polls_while_parked: counter,
    /// Wall-clock nanoseconds this rank spent parked on a condvar (zero
    /// CPU). Measured only under `ClockMode::Wall`; deterministic
    /// virtual-clock runs report zero so their exports stay replayable.
    parked_ns: counter,
    /// Wall-clock nanoseconds this rank spent in wait loops *between*
    /// progress quanta — burning CPU on re-tests rather than useful
    /// progress. Wall-clock only, like `parked_ns`.
    spinning_ns: counter,
    /// Wall-clock nanoseconds spent inside progress quanta (conduit polls,
    /// deferred drains, coalescer flushes). Wall-clock only.
    progress_ns: counter,
    /// Happens-before edges assembled by the causal tracer on this rank
    /// (rank 0 assembles; other ranks report zero).
    hb_edges: counter,
    /// Causality violations detected by causal assembly: a happens-before
    /// edge whose destination carries an earlier wall timestamp than its
    /// source. Pinned to zero under `ClockMode::Virtual`; nonzero flags
    /// cross-process clock skew on the UDP conduit.
    causal_violations: counter,
    /// High-water mark of the assembled causal chain depth (longest
    /// happens-before path, in hops).
    causal_chain_depth: gauge,
    /// Continuation callbacks (`operation_cx::as_callback`) executed on
    /// behalf of this rank — by its own progress quantum or by the
    /// background progress thread. Each registered callback runs exactly
    /// once, so at quiescence this equals the number of ops issued with a
    /// callback completion.
    callbacks_run: counter,
    /// Callbacks enqueued while a callback drain was already running on
    /// this rank's queue (i.e. from inside a user callback): they join the
    /// same FIFO and are delivered by the same drain, never reentrantly.
    callbacks_deferred: counter,
    /// Poll iterations executed by the background progress thread on this
    /// rank's node (attributed to the node's first rank; zero without
    /// `--progress-thread` and always zero under the virtual clock).
    progress_thread_polls: counter,
    /// Times the background progress thread was woken from its parked
    /// cadence by an injection or callback enqueue (vs. timing out).
    progress_thread_wakeups: counter,
}

#[inline]
pub(crate) fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Add `v` to a counter (time accounting and other bulk increments).
#[inline]
pub(crate) fn add(c: &AtomicU64, v: u64) {
    c.fetch_add(v, Ordering::Relaxed);
}

/// Raise a gauge to at least `v` (high-water marks).
#[inline]
pub(crate) fn raise(c: &AtomicU64, v: u64) {
    c.fetch_max(v, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = Stats::default();
        bump(&s.cell_allocs);
        bump(&s.cell_allocs);
        bump(&s.rputs);
        let snap = s.snapshot();
        assert_eq!(snap.cell_allocs, 2);
        assert_eq!(snap.rputs, 1);
        assert_eq!(snap.rgets, 0);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = Stats::default();
        bump(&s.amos);
        let a = s.snapshot();
        bump(&s.amos);
        bump(&s.amos);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.amos, 2);
        assert_eq!(d.rputs, 0);
    }

    #[test]
    fn fields_and_values_align() {
        let s = Stats::default();
        bump(&s.rputs);
        s.pending_highwater.store(7, Ordering::Relaxed);
        let snap = s.snapshot();
        let fields = StatsSnapshot::FIELDS;
        let values = snap.values();
        assert_eq!(fields.len(), values.len());
        let idx = |name: &str| fields.iter().position(|(n, _)| *n == name).unwrap();
        assert_eq!(values[idx("rputs")], 1);
        assert_eq!(values[idx("pending_highwater")], 7);
        assert_eq!(fields[idx("rputs")].1, FieldClass::Counter);
        assert_eq!(fields[idx("pending_highwater")].1, FieldClass::Gauge);
    }

    #[test]
    fn since_passes_gauges_through() {
        // `pending_highwater` is a gauge: even when the earlier snapshot's
        // level exceeds the later one, `since` reports the later sample —
        // never a subtraction.
        let s = Stats::default();
        s.pending_highwater.store(10, Ordering::Relaxed);
        let a = s.snapshot();
        s.pending_highwater.store(4, Ordering::Relaxed);
        let b = s.snapshot();
        assert_eq!(b.since(&a).pending_highwater, 4);
        assert_eq!(a.since(&b).pending_highwater, 10);
    }

    #[test]
    fn add_and_raise_helpers() {
        let s = Stats::default();
        add(&s.parked_ns, 40);
        add(&s.parked_ns, 2);
        raise(&s.pending_highwater, 9);
        raise(&s.pending_highwater, 3);
        let snap = s.snapshot();
        assert_eq!(snap.parked_ns, 42);
        assert_eq!(snap.pending_highwater, 9, "raise never lowers a gauge");
    }

    #[test]
    fn continuation_counters_are_registered_and_reset() {
        // The four continuation/progress-thread counters ride the same
        // macro as everything else, so snapshot/reset/FIELDS must all see
        // them (the PR-4/PR-8 reset-coverage pattern).
        let s = Stats::default();
        bump(&s.callbacks_run);
        bump(&s.callbacks_deferred);
        bump(&s.progress_thread_polls);
        bump(&s.progress_thread_wakeups);
        let snap = s.snapshot();
        assert_eq!(snap.callbacks_run, 1);
        assert_eq!(snap.callbacks_deferred, 1);
        assert_eq!(snap.progress_thread_polls, 1);
        assert_eq!(snap.progress_thread_wakeups, 1);
        for name in [
            "callbacks_run",
            "callbacks_deferred",
            "progress_thread_polls",
            "progress_thread_wakeups",
        ] {
            let (_, class) = StatsSnapshot::FIELDS
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("missing field {name}"));
            assert_eq!(*class, FieldClass::Counter);
        }
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
