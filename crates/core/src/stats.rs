//! Per-rank runtime statistics.
//!
//! Counters for the internal events the paper's optimizations target —
//! promise-cell heap allocations, deferred-queue traffic, eager
//! notifications, dependency-graph nodes. Tests use them to prove that an
//! optimization *structurally* removed work (e.g. "an eager local `rput`
//! allocates zero cells"), independent of timing noise.
//!
//! These counters are per-rank. The simulated network's counters —
//! including the chaos-mode reliability layer (`retries`, `drops_injected`,
//! `dup_suppressed`, `max_backoff_ns`) — are world-global and live in
//! [`gasnex::NetStats`], reachable via `Upcr::net_stats`.

use std::cell::Cell;

/// Mutable per-rank counters (single-threaded; lives in the rank context).
#[derive(Default)]
pub(crate) struct Stats {
    pub cell_allocs: Cell<u64>,
    pub legacy_extra_allocs: Cell<u64>,
    pub deferred_enqueued: Cell<u64>,
    pub eager_notifications: Cell<u64>,
    pub net_injected: Cell<u64>,
    pub rputs: Cell<u64>,
    pub rgets: Cell<u64>,
    pub amos: Cell<u64>,
    pub rpcs: Cell<u64>,
    pub when_all_fast: Cell<u64>,
    pub when_all_nodes: Cell<u64>,
    pub progress_calls: Cell<u64>,
    pub event_wakeups: Cell<u64>,
    pub polls_elided: Cell<u64>,
    pub pending_highwater: Cell<u64>,
}

impl Stats {
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            cell_allocs: self.cell_allocs.get(),
            legacy_extra_allocs: self.legacy_extra_allocs.get(),
            deferred_enqueued: self.deferred_enqueued.get(),
            eager_notifications: self.eager_notifications.get(),
            net_injected: self.net_injected.get(),
            rputs: self.rputs.get(),
            rgets: self.rgets.get(),
            amos: self.amos.get(),
            rpcs: self.rpcs.get(),
            when_all_fast: self.when_all_fast.get(),
            when_all_nodes: self.when_all_nodes.get(),
            progress_calls: self.progress_calls.get(),
            event_wakeups: self.event_wakeups.get(),
            polls_elided: self.polls_elided.get(),
            pending_highwater: self.pending_highwater.get(),
        }
    }

    pub fn reset(&self) {
        self.cell_allocs.set(0);
        self.legacy_extra_allocs.set(0);
        self.deferred_enqueued.set(0);
        self.eager_notifications.set(0);
        self.net_injected.set(0);
        self.rputs.set(0);
        self.rgets.set(0);
        self.amos.set(0);
        self.rpcs.set(0);
        self.when_all_fast.set(0);
        self.when_all_nodes.set(0);
        self.progress_calls.set(0);
        self.event_wakeups.set(0);
        self.polls_elided.set(0);
        self.pending_highwater.set(0);
    }
}

#[inline]
pub(crate) fn bump(c: &Cell<u64>) {
    c.set(c.get() + 1);
}

/// A point-in-time copy of one rank's runtime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Internal promise cells heap-allocated (futures machinery).
    pub cell_allocs: u64,
    /// Extra per-operation allocations on the legacy 2021.3.0 RMA path.
    pub legacy_extra_allocs: u64,
    /// Notifications routed through the deferred progress queue.
    pub deferred_enqueued: u64,
    /// Notifications delivered eagerly at initiation.
    pub eager_notifications: u64,
    /// Operations injected into the simulated network (off-node traffic).
    pub net_injected: u64,
    /// RMA puts initiated.
    pub rputs: u64,
    /// RMA gets initiated.
    pub rgets: u64,
    /// Atomic operations initiated.
    pub amos: u64,
    /// RPCs initiated.
    pub rpcs: u64,
    /// `when_all`/conjoin calls resolved by the ready-input fast path.
    pub when_all_fast: u64,
    /// Dependency-graph nodes constructed by `when_all`/conjoin.
    pub when_all_nodes: u64,
    /// Progress-engine quanta executed.
    pub progress_calls: u64,
    /// Deferred notifications delivered via a ready-queue token (the
    /// signal-driven engine): each is one wakeup that replaced a poll scan.
    pub event_wakeups: u64,
    /// Event re-tests the signal-driven engine skipped: per quantum, the
    /// number of still-pending event waiters the poll-scan engine would
    /// have re-tested and re-queued.
    pub polls_elided: u64,
    /// High-water mark of simultaneously pending notifications (registered
    /// event waiters plus queued rank-local deferred entries).
    pub pending_highwater: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            cell_allocs: self.cell_allocs.saturating_sub(earlier.cell_allocs),
            legacy_extra_allocs: self
                .legacy_extra_allocs
                .saturating_sub(earlier.legacy_extra_allocs),
            deferred_enqueued: self
                .deferred_enqueued
                .saturating_sub(earlier.deferred_enqueued),
            eager_notifications: self
                .eager_notifications
                .saturating_sub(earlier.eager_notifications),
            net_injected: self.net_injected.saturating_sub(earlier.net_injected),
            rputs: self.rputs.saturating_sub(earlier.rputs),
            rgets: self.rgets.saturating_sub(earlier.rgets),
            amos: self.amos.saturating_sub(earlier.amos),
            rpcs: self.rpcs.saturating_sub(earlier.rpcs),
            when_all_fast: self.when_all_fast.saturating_sub(earlier.when_all_fast),
            when_all_nodes: self.when_all_nodes.saturating_sub(earlier.when_all_nodes),
            progress_calls: self.progress_calls.saturating_sub(earlier.progress_calls),
            event_wakeups: self.event_wakeups.saturating_sub(earlier.event_wakeups),
            polls_elided: self.polls_elided.saturating_sub(earlier.polls_elided),
            // A high-water mark is a gauge, not a count; `since` reports the
            // later sample unchanged so callers see the peak over the run.
            pending_highwater: self.pending_highwater,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = Stats::default();
        bump(&s.cell_allocs);
        bump(&s.cell_allocs);
        bump(&s.rputs);
        let snap = s.snapshot();
        assert_eq!(snap.cell_allocs, 2);
        assert_eq!(snap.rputs, 1);
        assert_eq!(snap.rgets, 0);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = Stats::default();
        bump(&s.amos);
        let a = s.snapshot();
        bump(&s.amos);
        bump(&s.amos);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.amos, 2);
        assert_eq!(d.rputs, 0);
    }
}
