//! The completions mechanism: what to signal, how, and *when*.
//!
//! A communication operation takes a *completions object* describing the
//! notifications the program wants for each event (§II-A):
//!
//! * **source completion** — the source buffer is reusable;
//! * **operation completion** — the whole operation finished at the
//!   initiator;
//! * **remote completion** — (puts only) data arrived at the target; runs an
//!   RPC there.
//!
//! Individual requests come from the factory modules [`operation_cx`],
//! [`source_cx`], and [`remote_cx`], and compose with `|` exactly as in
//! UPC++:
//!
//! ```ignore
//! let (src_done, op_done) = u.rput_with(
//!     v, gp,
//!     source_cx::as_future() | operation_cx::as_future(),
//! );
//! ```
//!
//! The paper's contribution lives in [`Notifier`]: when an operation's data
//! movement completed **synchronously** at initiation and the request allows
//! **eager** notification, the notification is delivered immediately — a
//! ready future is returned (for `Future<()>`, the rank's shared
//! pre-allocated cell: zero heap traffic) and promise registration is elided
//! entirely. Otherwise the notification is routed through the deferred
//! progress queue, as all notifications were through release 2021.3.0.

use std::any::TypeId;
use std::rc::Rc;
use std::sync::Arc;

use gasnex::EventCore;
use std::sync::Mutex;

use crate::ctx::{Deferred, RankCtx};
use crate::future::cell::{new_cell, new_cell_with_value};
use crate::future::future::Future;
use crate::future::promise::Promise;
use crate::global_ptr::SegValue;
use crate::stats::bump;
use crate::trace::{CompletionPath, TraceOp};
use crate::version::LibVersion;

/// When a requested notification may be delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Follow the build's default (`UPCXX_DEFER_COMPLETION` semantics):
    /// eager under "2021.3.6 eager", deferred otherwise.
    Default,
    /// Allow (not guarantee) eager delivery when the data movement completes
    /// synchronously. Unavailable under 2021.3.0 semantics.
    Eager,
    /// Guarantee deferral to the next progress call (legacy behaviour).
    Defer,
}

/// Values that can ride on a completion notification.
///
/// The one interesting method distinguishes `()` — whose ready futures can
/// share the pre-allocated cell — from value-carrying types, which must
/// allocate storage for the value ("the value must be stored somewhere",
/// §III-B).
pub trait CxValue: Clone + Send + 'static {
    /// Build a ready future carrying `self` for an eagerly-completed
    /// operation.
    fn into_ready_future(self) -> Future<Self>;
}

impl CxValue for () {
    #[inline]
    fn into_ready_future(self) -> Future<()> {
        Future::ready_unit()
    }
}

macro_rules! impl_cxvalue_scalar {
    ($($t:ty),*) => {$(
        impl CxValue for $t {
            #[inline]
            fn into_ready_future(self) -> Future<Self> {
                Future::ready(self)
            }
        }
    )*};
}
impl_cxvalue_scalar!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: SegValue> CxValue for Vec<T> {
    fn into_ready_future(self) -> Future<Self> {
        Future::ready(self)
    }
}

#[inline]
fn is_unit<V: 'static>() -> bool {
    TypeId::of::<V>() == TypeId::of::<()>()
}

/// How the data movement of an operation completed.
pub(crate) enum Disp<V: CxValue> {
    /// Synchronously, during initiation, producing `V` — eligible for eager
    /// notification.
    Sync(V),
    /// Asynchronously: `ev` signals when done; the produced value (if any)
    /// lands in `slot` before the signal.
    Async {
        ev: Arc<EventCore>,
        slot: Arc<Mutex<Option<V>>>,
    },
}

/// Routes each requested notification either eagerly or through the
/// deferred queue, based on the operation's disposition, the request mode,
/// and the running library version.
///
/// Constructed internally by communication operations; public only because
/// it appears in [`Completions::notify`] signatures.
pub struct Notifier<'a, V: CxValue> {
    ctx: &'a RankCtx,
    op: Disp<V>,
    /// The lifecycle-trace span this operation belongs to
    /// ([`TraceOp::NONE`] when tracing is off — recording helpers ignore
    /// it, so untraced operations carry no cost beyond the copy).
    top: TraceOp,
}

impl<'a, V: CxValue> Notifier<'a, V> {
    pub(crate) fn sync(ctx: &'a RankCtx, top: TraceOp, v: V) -> Self {
        Notifier {
            ctx,
            op: Disp::Sync(v),
            top,
        }
    }

    pub(crate) fn pending(
        ctx: &'a RankCtx,
        top: TraceOp,
        ev: Arc<EventCore>,
        slot: Arc<Mutex<Option<V>>>,
    ) -> Self {
        Notifier {
            ctx,
            op: Disp::Async { ev, slot },
            top,
        }
    }

    /// Resolve a request mode against the running version. Panics if the
    /// program uses an eager factory under 2021.3.0 semantics, where those
    /// factories do not exist.
    fn eager_requested(&self, mode: Mode) -> bool {
        match mode {
            Mode::Default => self.ctx.version.default_eager(),
            Mode::Defer => false,
            Mode::Eager => {
                assert!(
                    self.ctx.version.has_eager_factories(),
                    "as_eager_* completion factories do not exist in UPC++ {}",
                    LibVersion::V2021_3_0
                );
                true
            }
        }
    }

    /// Operation-completion notification via a future.
    pub fn op_future(&self, mode: Mode) -> Future<V> {
        match &self.op {
            Disp::Sync(v) => {
                if self.eager_requested(mode) {
                    // The eager fast path: no cell allocation for `()`, no
                    // progress-queue traffic.
                    bump(&self.ctx.stats.eager_notifications);
                    self.ctx.trace_notify(self.top, CompletionPath::Eager);
                    v.clone().into_ready_future()
                } else {
                    let cell = new_cell::<V>(1);
                    let c = Rc::clone(&cell);
                    let v = v.clone();
                    let top = self.top;
                    self.ctx.push_deferred(Deferred::Now(Box::new(move || {
                        c.set_value(v);
                        c.fulfill(1);
                        crate::ctx::trace_notify(top, CompletionPath::Deferred);
                    })));
                    Future::from_cell(cell)
                }
            }
            Disp::Async { ev, slot } => {
                let cell = new_cell::<V>(1);
                let c = Rc::clone(&cell);
                let slot = Arc::clone(slot);
                let top = self.top;
                // Signal-driven: the completion token wakes this exact
                // notification; the progress engine never re-tests the event.
                self.ctx.register_on_event(
                    ev,
                    Box::new(move || {
                        let v = slot
                            .lock()
                            .unwrap()
                            .clone()
                            .expect("operation event signalled before its value was stored");
                        c.set_value(v);
                        c.fulfill(1);
                        crate::ctx::trace_notify(top, CompletionPath::Deferred);
                    }),
                );
                Future::from_cell(cell)
            }
        }
    }

    /// Operation-completion notification via a promise.
    pub fn op_promise(&self, p: &Promise<V>, mode: Mode) {
        match &self.op {
            Disp::Sync(v) => {
                if self.eager_requested(mode) {
                    // Elide the require/fulfill pair entirely; a produced
                    // value still has to land in the promise's result slot.
                    bump(&self.ctx.stats.eager_notifications);
                    self.ctx.trace_notify(self.top, CompletionPath::Eager);
                    if !is_unit::<V>() {
                        p.set_value_only(v.clone());
                    }
                } else {
                    p.require_anonymous(1);
                    let p2 = p.clone();
                    let v = v.clone();
                    let top = self.top;
                    self.ctx.push_deferred(Deferred::Now(Box::new(move || {
                        if !is_unit::<V>() {
                            p2.set_value_only(v);
                        }
                        p2.fulfill_anonymous(1);
                        crate::ctx::trace_notify(top, CompletionPath::Deferred);
                    })));
                }
            }
            Disp::Async { ev, slot } => {
                p.require_anonymous(1);
                let p2 = p.clone();
                let slot = Arc::clone(slot);
                let top = self.top;
                self.ctx.register_on_event(
                    ev,
                    Box::new(move || {
                        if !is_unit::<V>() {
                            let v =
                                slot.lock().unwrap().clone().expect(
                                    "operation event signalled before its value was stored",
                                );
                            p2.set_value_only(v);
                        }
                        p2.fulfill_anonymous(1);
                        crate::ctx::trace_notify(top, CompletionPath::Deferred);
                    }),
                );
            }
        }
    }

    /// Operation-completion local procedure call.
    pub fn op_lpc(&self, f: Box<dyn FnOnce(V)>, mode: Mode) {
        match &self.op {
            Disp::Sync(v) => {
                if self.eager_requested(mode) {
                    bump(&self.ctx.stats.eager_notifications);
                    self.ctx.trace_notify(self.top, CompletionPath::Eager);
                    f(v.clone());
                } else {
                    let v = v.clone();
                    let top = self.top;
                    self.ctx.push_deferred(Deferred::Now(Box::new(move || {
                        f(v);
                        crate::ctx::trace_notify(top, CompletionPath::Deferred);
                    })));
                }
            }
            Disp::Async { ev, slot } => {
                let slot = Arc::clone(slot);
                let top = self.top;
                self.ctx.register_on_event(
                    ev,
                    Box::new(move || {
                        let v = slot
                            .lock()
                            .unwrap()
                            .clone()
                            .expect("operation event signalled before its value was stored");
                        f(v);
                        crate::ctx::trace_notify(top, CompletionPath::Deferred);
                    }),
                );
            }
        }
    }

    /// Operation-completion continuation callback
    /// (`operation_cx::as_callback`) — the third completion mode.
    ///
    /// The closure never runs inline on the injecting call, whatever the
    /// version or disposition: a synchronously-completed operation enqueues
    /// onto the rank's callback FIFO (drained by the next progress quantum
    /// or by the background progress thread), and an asynchronous one
    /// registers an `EventCore` waiter that enqueues at signal time. A
    /// callback enqueued from inside a running callback joins the live
    /// drain's FIFO — same quantum, never reentrant.
    pub fn op_callback(&self, f: Box<dyn FnOnce(V) + Send>) {
        let top = self.top;
        match &self.op {
            Disp::Sync(v) => {
                let v = v.clone();
                self.ctx.enqueue_callback(Box::new(move || f(v)), top);
            }
            Disp::Async { ev, slot } => {
                let slot = Arc::clone(slot);
                let q = Arc::clone(&self.ctx.callbacks);
                let stats = Arc::clone(&self.ctx.stats);
                let world = Arc::clone(&self.ctx.world);
                ev.on_signal(move || {
                    let v = slot
                        .lock()
                        .unwrap()
                        .clone()
                        .expect("operation event signalled before its value was stored");
                    // The signalling thread may be mid-drain of this very
                    // queue (a callback issued the op): count the deferral,
                    // exactly as enqueue_callback does on the rank thread.
                    let during_drain = q.push(Box::new(move || f(v)), top);
                    if during_drain {
                        bump(&stats.callbacks_deferred);
                    }
                    world.wake_progress();
                });
            }
        }
    }

    /// Source-completion notification via a future.
    ///
    /// In this implementation the source payload is always captured during
    /// initiation (scalar by value; bulk by copy into the injected message),
    /// so source completion is always synchronous: the only question is
    /// whether its notification is delivered eagerly or deferred.
    pub fn source_future(&self, mode: Mode) -> Future<()> {
        if self.eager_requested(mode) {
            bump(&self.ctx.stats.eager_notifications);
            Future::ready_unit()
        } else {
            let cell = new_cell_with_value(1, ());
            let c = Rc::clone(&cell);
            self.ctx.push_deferred(Deferred::Now(Box::new(move || {
                c.fulfill(1);
            })));
            Future::from_cell(cell)
        }
    }

    /// Source-completion notification via a promise.
    pub fn source_promise(&self, p: &Promise<()>, mode: Mode) {
        if self.eager_requested(mode) {
            bump(&self.ctx.stats.eager_notifications);
        } else {
            p.require_anonymous(1);
            let p2 = p.clone();
            self.ctx
                .push_deferred(Deferred::Now(Box::new(move || p2.fulfill_anonymous(1))));
        }
    }
}

/// A remote-completion RPC payload (runs on the target after data arrival).
pub(crate) type RemoteFn = Box<dyn FnOnce() + Send>;

/// A composed set of completion requests for one operation producing `V`.
///
/// Implemented by the factory products and by [`CxPair`], whose `Out` is the
/// tuple of the parts' outputs (a future per `as_future` request; `()` for
/// promise/LPC/RPC requests).
pub trait Completions<V: CxValue> {
    /// What the initiating call returns.
    type Out;
    /// Drain any remote-completion RPCs into `sink` (the operation attaches
    /// them to the data transfer).
    fn take_remote(&mut self, sink: &mut Vec<RemoteFn>);
    /// Wire up the local notifications and produce the call's return value.
    fn notify(self, n: &Notifier<'_, V>) -> Self::Out;
}

/// Requested operation-completion future.
pub struct OpFuture {
    mode: Mode,
}
/// Requested operation-completion promise notification.
pub struct OpPromise<V: CxValue> {
    p: Promise<V>,
    mode: Mode,
}
/// Requested operation-completion local procedure call.
pub struct OpLpc<F> {
    f: F,
    mode: Mode,
}
/// Requested operation-completion continuation callback (never inline,
/// never reentrant; see [`operation_cx::as_callback`]).
pub struct OpCallback<F> {
    f: F,
}
/// Requested source-completion future.
pub struct SrcFuture {
    mode: Mode,
}
/// Requested source-completion promise notification.
pub struct SrcPromise {
    p: Promise<()>,
    mode: Mode,
}
/// Requested remote-completion RPC.
pub struct RemoteRpc {
    f: Option<RemoteFn>,
}
/// Two composed completion requests (`a | b`).
pub struct CxPair<A, B>(A, B);

impl<V: CxValue> Completions<V> for OpFuture {
    type Out = Future<V>;
    fn take_remote(&mut self, _sink: &mut Vec<RemoteFn>) {}
    fn notify(self, n: &Notifier<'_, V>) -> Future<V> {
        n.op_future(self.mode)
    }
}

impl<V: CxValue> Completions<V> for OpPromise<V> {
    type Out = ();
    fn take_remote(&mut self, _sink: &mut Vec<RemoteFn>) {}
    fn notify(self, n: &Notifier<'_, V>) {
        n.op_promise(&self.p, self.mode)
    }
}

impl<V: CxValue, F: FnOnce(V) + 'static> Completions<V> for OpLpc<F> {
    type Out = ();
    fn take_remote(&mut self, _sink: &mut Vec<RemoteFn>) {}
    fn notify(self, n: &Notifier<'_, V>) {
        n.op_lpc(Box::new(self.f), self.mode)
    }
}

impl<V: CxValue, F: FnOnce(V) + Send + 'static> Completions<V> for OpCallback<F> {
    type Out = ();
    fn take_remote(&mut self, _sink: &mut Vec<RemoteFn>) {}
    fn notify(self, n: &Notifier<'_, V>) {
        n.op_callback(Box::new(self.f))
    }
}

impl<V: CxValue> Completions<V> for SrcFuture {
    type Out = Future<()>;
    fn take_remote(&mut self, _sink: &mut Vec<RemoteFn>) {}
    fn notify(self, n: &Notifier<'_, V>) -> Future<()> {
        n.source_future(self.mode)
    }
}

impl<V: CxValue> Completions<V> for SrcPromise {
    type Out = ();
    fn take_remote(&mut self, _sink: &mut Vec<RemoteFn>) {}
    fn notify(self, n: &Notifier<'_, V>) {
        n.source_promise(&self.p, self.mode)
    }
}

impl<V: CxValue> Completions<V> for RemoteRpc {
    type Out = ();
    fn take_remote(&mut self, sink: &mut Vec<RemoteFn>) {
        sink.extend(self.f.take());
    }
    fn notify(self, _n: &Notifier<'_, V>) {}
}

impl<V: CxValue, A: Completions<V>, B: Completions<V>> Completions<V> for CxPair<A, B> {
    type Out = (A::Out, B::Out);
    fn take_remote(&mut self, sink: &mut Vec<RemoteFn>) {
        self.0.take_remote(sink);
        self.1.take_remote(sink);
    }
    fn notify(self, n: &Notifier<'_, V>) -> Self::Out {
        (self.0.notify(n), self.1.notify(n))
    }
}

macro_rules! impl_bitor {
    ($ty:ty $(, $gen:ident $(: $bound:path)?)*) => {
        impl<Rhs $(, $gen $(: $bound)?)*> std::ops::BitOr<Rhs> for $ty {
            type Output = CxPair<Self, Rhs>;
            fn bitor(self, rhs: Rhs) -> Self::Output {
                CxPair(self, rhs)
            }
        }
    };
}
impl_bitor!(OpFuture);
impl_bitor!(OpPromise<V>, V: CxValue);
impl_bitor!(OpLpc<F>, F);
impl_bitor!(OpCallback<F>, F);
impl_bitor!(SrcFuture);
impl_bitor!(SrcPromise);
impl_bitor!(RemoteRpc);
impl_bitor!(CxPair<A, B>, A, B);

/// Factories for operation-completion notifications.
pub mod operation_cx {
    use super::*;

    /// Future notification with the build's default eager/defer semantics.
    pub fn as_future() -> OpFuture {
        OpFuture {
            mode: Mode::Default,
        }
    }
    /// Future notification, eager when the operation completes
    /// synchronously (§III-A).
    pub fn as_eager_future() -> OpFuture {
        OpFuture { mode: Mode::Eager }
    }
    /// Future notification, always deferred to a progress call.
    pub fn as_defer_future() -> OpFuture {
        OpFuture { mode: Mode::Defer }
    }
    /// Promise notification with the build's default semantics.
    pub fn as_promise<V: CxValue>(p: &Promise<V>) -> OpPromise<V> {
        OpPromise {
            p: p.clone(),
            mode: Mode::Default,
        }
    }
    /// Promise notification, eager when possible.
    pub fn as_eager_promise<V: CxValue>(p: &Promise<V>) -> OpPromise<V> {
        OpPromise {
            p: p.clone(),
            mode: Mode::Eager,
        }
    }
    /// Promise notification, always deferred.
    pub fn as_defer_promise<V: CxValue>(p: &Promise<V>) -> OpPromise<V> {
        OpPromise {
            p: p.clone(),
            mode: Mode::Defer,
        }
    }
    /// Local procedure call on operation completion.
    pub fn as_lpc<V: CxValue, F: FnOnce(V) + 'static>(f: F) -> OpLpc<F> {
        OpLpc {
            f,
            mode: Mode::Default,
        }
    }
    /// Continuation callback on operation completion — the third
    /// completion mode, after futures/promises and signals.
    ///
    /// The closure runs **exactly once** when the operation completes:
    /// from a progress quantum's callback drain, from the signalling
    /// thread's enqueue path, or from the background progress thread
    /// (`RuntimeConfig::with_progress_thread`). It never runs inline on
    /// the injecting call (even for synchronously-completed local
    /// operations — there is no eager/defer mode axis here) and never
    /// reentrantly inside another callback: enqueues made during a drain
    /// join the same FIFO and are delivered by that drain. The closure
    /// must be `Send` — a foreign thread may execute it.
    pub fn as_callback<V: CxValue, F: FnOnce(V) + Send + 'static>(f: F) -> OpCallback<F> {
        OpCallback { f }
    }
}

/// Factories for source-completion notifications.
pub mod source_cx {
    use super::*;

    /// Future notification with the build's default semantics.
    pub fn as_future() -> SrcFuture {
        SrcFuture {
            mode: Mode::Default,
        }
    }
    /// Future notification, eager when possible.
    pub fn as_eager_future() -> SrcFuture {
        SrcFuture { mode: Mode::Eager }
    }
    /// Future notification, always deferred.
    pub fn as_defer_future() -> SrcFuture {
        SrcFuture { mode: Mode::Defer }
    }
    /// Promise notification with the build's default semantics.
    pub fn as_promise(p: &Promise<()>) -> SrcPromise {
        SrcPromise {
            p: p.clone(),
            mode: Mode::Default,
        }
    }
    /// Promise notification, eager when possible.
    pub fn as_eager_promise(p: &Promise<()>) -> SrcPromise {
        SrcPromise {
            p: p.clone(),
            mode: Mode::Eager,
        }
    }
    /// Promise notification, always deferred.
    pub fn as_defer_promise(p: &Promise<()>) -> SrcPromise {
        SrcPromise {
            p: p.clone(),
            mode: Mode::Defer,
        }
    }
}

/// Factories for remote-completion notifications (puts only).
pub mod remote_cx {
    use super::*;

    /// Run `f` on the target rank after the data has arrived.
    pub fn as_rpc(f: impl FnOnce() + Send + 'static) -> RemoteRpc {
        RemoteRpc {
            f: Some(Box::new(f)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{launch, RuntimeConfig};

    #[test]
    fn cxvalue_unit_ready_future_is_ready() {
        let f = ().into_ready_future();
        assert!(f.is_ready());
        let g = 42u64.into_ready_future();
        assert_eq!(g.result(), 42);
        let v = vec![1u8, 2].into_ready_future();
        assert_eq!(v.result(), vec![1, 2]);
    }

    #[test]
    fn is_unit_discriminates() {
        assert!(is_unit::<()>());
        assert!(!is_unit::<u64>());
        assert!(!is_unit::<Vec<u8>>());
    }

    #[test]
    fn composition_produces_nested_tuples() {
        // Type-level check: (src | (op | rpc)) yields (Future<()>, (Future<()>, ())).
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 16), |u| {
            let p = u.new_::<u64>(0);
            let (src, (op, ())) = u.rput_with(
                1,
                p,
                source_cx::as_future() | (operation_cx::as_future() | remote_cx::as_rpc(|| {})),
            );
            assert!(src.is_ready() && op.is_ready());
            u.progress(); // drain the self-targeted rpc
        });
    }

    #[test]
    fn callback_never_runs_inline_even_for_local_ops() {
        // A self-targeted put completes synchronously, but the callback
        // still waits for the next progress quantum — there is no eager
        // mode on the callback axis.
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 16), |u| {
            let hit = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
            let p = u.new_::<u64>(0);
            let h = std::sync::Arc::clone(&hit);
            u.rput_with(
                7,
                p,
                operation_cx::as_callback(move |_: ()| {
                    h.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }),
            );
            assert_eq!(
                hit.load(std::sync::atomic::Ordering::Relaxed),
                0,
                "callback must not run inline on the injecting call"
            );
            u.progress();
            assert_eq!(hit.load(std::sync::atomic::Ordering::Relaxed), 1);
            let s = u.stats();
            assert_eq!(s.callbacks_run, 1);
            u.barrier();
        });
    }

    #[test]
    fn callback_composes_with_future_on_one_async_op() {
        // `as_future | as_callback` hangs two waiters off one EventCore;
        // both complete, and the callback sees the fetched value.
        launch(RuntimeConfig::smp(2).with_segment_size(1 << 16), |u| {
            let mine = u.new_::<u64>(u.rank_me() as u64 + 100);
            let peer = u.broadcast(mine, 1);
            u.barrier();
            if u.rank_me() == 0 {
                let got = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
                let g = std::sync::Arc::clone(&got);
                let (f, ()) = u.rget_with(
                    peer,
                    operation_cx::as_future()
                        | operation_cx::as_callback(move |v: u64| {
                            g.store(v, std::sync::atomic::Ordering::Relaxed);
                        }),
                );
                assert_eq!(f.wait(), 101);
                while got.load(std::sync::atomic::Ordering::Relaxed) == 0 {
                    u.progress();
                }
                assert_eq!(got.load(std::sync::atomic::Ordering::Relaxed), 101);
            }
            u.barrier();
        });
    }

    #[test]
    fn nested_enqueue_is_deferred_not_reentrant() {
        // A callback that issues another callback-carrying op: the inner
        // callback is enqueued during the drain, counted as deferred, and
        // runs in the same (drain-until-empty) quantum — never reentrantly.
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 16), |u| {
            let order = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            let p = u.new_::<u64>(0);
            let o = std::sync::Arc::clone(&order);
            u.rput_with(
                1,
                p,
                operation_cx::as_callback(move |_: ()| {
                    o.lock().unwrap().push("outer-start");
                    let o2 = std::sync::Arc::clone(&o);
                    crate::runtime::api::rput_with_callback(2, p, move |_: ()| {
                        o2.lock().unwrap().push("inner");
                    });
                    o.lock().unwrap().push("outer-end");
                }),
            );
            u.progress();
            assert_eq!(
                *order.lock().unwrap(),
                vec!["outer-start", "outer-end", "inner"],
                "inner callback must run after the outer returns, same quantum"
            );
            let s = u.stats();
            assert_eq!(s.callbacks_run, 2);
            assert_eq!(s.callbacks_deferred, 1, "the nested enqueue was deferred");
            u.barrier();
        });
    }

    #[test]
    fn mode_default_tracks_version() {
        for (version, expect_ready) in [
            (LibVersion::V2021_3_0, false),
            (LibVersion::V2021_3_6Defer, false),
            (LibVersion::V2021_3_6Eager, true),
        ] {
            launch(
                RuntimeConfig::smp(1)
                    .with_version(version)
                    .with_segment_size(1 << 16),
                move |u| {
                    let p = u.new_::<u64>(0);
                    let f = u.rput_with(1, p, operation_cx::as_future());
                    assert_eq!(f.is_ready(), expect_ready, "{version}");
                    f.wait();
                },
            );
        }
    }
}
