//! Atomic domains: remote atomic operations on 64-bit shared words.
//!
//! Modeled on `upcxx::atomic_domain<T>`. Atomics must go through the
//! runtime even for local targets — the paper notes manual localization is
//! impossible for atomics because coherency with (potentially NIC-offloaded)
//! remote atomics must be preserved. Here, same-node targets execute a
//! hardware atomic directly (synchronous completion → eager-eligible);
//! cross-node targets are injected into the simulated network and executed
//! at delivery.
//!
//! §III-B's new **non-value-producing overloads of fetching atomics** are
//! the `fetch_*_into` methods: the fetched prior value is written to a
//! caller-supplied memory location instead of riding the completion, so the
//! result future is value-less and — combined with eager notification —
//! requires no internal cell allocation at all.

use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::Arc;

use gasnex::{AmoOp, EventCore, Rank};
use std::sync::Mutex;

use crate::completion::{operation_cx, Completions, CxValue, Notifier};
use crate::ctx::RankCtx;
use crate::future::Future;
use crate::global_ptr::{GlobalPtr, SegValue};
use crate::runtime::Upcr;
use crate::stats::bump;

/// Value types supported by atomic domains (64-bit integers, matching the
/// word-atomic segment storage).
pub trait AtomicValue: SegValue + CxValue {
    /// Whether min/max compare as signed.
    const SIGNED: bool;
}

impl AtomicValue for u64 {
    const SIGNED: bool = false;
}
impl AtomicValue for i64 {
    const SIGNED: bool = true;
}

/// A domain of atomic operations over `T`, bound to the constructing rank.
pub struct AtomicDomain<T: AtomicValue> {
    ctx: Rc<RankCtx>,
    _marker: PhantomData<fn() -> T>,
}

impl Upcr {
    /// Construct an atomic domain for `T` (`u64` or `i64`).
    pub fn atomic_domain<T: AtomicValue>(&self) -> AtomicDomain<T> {
        AtomicDomain {
            ctx: Rc::clone(&self.ctx),
            _marker: PhantomData,
        }
    }
}

/// Where a fetched value should be delivered.
#[derive(Clone, Copy)]
enum FetchDest {
    /// Into the completion notification (classic fetching op).
    Notification,
    /// Into memory at `(rank, offset)` (the new non-value overloads).
    Memory(Rank, usize),
}

/// Generates the method family for one arithmetic/bitwise op: non-fetching
/// (`add`), fetching (`fetch_add`), and the new fetch-into-memory overloads
/// (`fetch_add_into`, §III-B), each with an explicit-completions `_with`
/// form.
macro_rules! fetch_family {
    ($plain:ident, $plain_with:ident, $fetch:ident, $fetch_with:ident,
     $into:ident, $into_with:ident, $op_plain:expr, $op_fetch:expr, $doc:literal) => {
        #[doc = concat!("Non-fetching: ", $doc, ".")]
        pub fn $plain(&self, p: GlobalPtr<T>, v: T) -> Future<()> {
            self.$plain_with(p, v, operation_cx::as_future())
        }

        #[doc = concat!("Non-fetching ", $doc, ", with explicit completions.")]
        pub fn $plain_with<C: Completions<()>>(&self, p: GlobalPtr<T>, v: T, cx: C) -> C::Out {
            self.issue_unit(p, $op_plain, v.to_bits(), 0, FetchDest::Notification, cx)
        }

        #[doc = concat!("Fetching: ", $doc, ", the completion carrying the prior value.")]
        pub fn $fetch(&self, p: GlobalPtr<T>, v: T) -> Future<T> {
            self.$fetch_with(p, v, operation_cx::as_future())
        }

        #[doc = concat!("Fetching ", $doc, ", with explicit completions.")]
        pub fn $fetch_with<C: Completions<T>>(&self, p: GlobalPtr<T>, v: T, cx: C) -> C::Out {
            self.issue_fetch(p, $op_fetch, v.to_bits(), 0, cx)
        }

        #[doc = concat!("New non-value overload (§III-B): ", $doc,
                            ", writing the prior value to `result` instead of the completion. \
             Unavailable under 2021.3.0 semantics.")]
        pub fn $into(&self, p: GlobalPtr<T>, v: T, result: GlobalPtr<T>) -> Future<()> {
            self.$into_with(p, v, result, operation_cx::as_future())
        }

        #[doc = concat!("As [`Self::", stringify!($into), "`], with explicit completions.")]
        pub fn $into_with<C: Completions<()>>(
            &self,
            p: GlobalPtr<T>,
            v: T,
            result: GlobalPtr<T>,
            cx: C,
        ) -> C::Out {
            self.check_into_available();
            assert_eq!(
                result.offset() % 8,
                0,
                "atomic result target must be 8-byte aligned"
            );
            self.issue_unit(
                p,
                $op_fetch,
                v.to_bits(),
                0,
                FetchDest::Memory(result.rank(), result.offset()),
                cx,
            )
        }
    };
}

impl<T: AtomicValue> AtomicDomain<T> {
    /// Core dispatch: execute `op` on the word at `target`, routing the
    /// fetched value per `dest`, and produce completions of value type `V`.
    /// `aggregate` marks the op eligible for sender-side coalescing: only
    /// non-fetching atomics whose completion carries no value, since a
    /// fetched result should not wait in a batch buffer behind unrelated
    /// ops.
    #[allow(clippy::too_many_arguments)] // one parameter per AMO aspect; all call sites are the two wrappers below
    fn issue<V: CxValue, C: Completions<V>>(
        &self,
        target: GlobalPtr<T>,
        op: AmoOp,
        operand: u64,
        operand2: u64,
        dest: FetchDest,
        aggregate: bool,
        wrap: impl Fn(u64) -> V + Send + 'static,
        mut cx: C,
    ) -> C::Out {
        let ctx = &*self.ctx;
        debug_assert!(!target.is_null(), "atomic on null global pointer");
        assert_eq!(
            target.offset() % 8,
            0,
            "atomic target must be 8-byte aligned"
        );
        bump(&ctx.stats.amos);
        let top = ctx.trace_op_init(crate::trace::OpKind::Amo, true);
        let mut rpcs = Vec::new();
        cx.take_remote(&mut rpcs);
        assert!(
            rpcs.is_empty(),
            "remote_cx completions are not supported on atomics"
        );
        if ctx.addressable(target.rank()) {
            let prior = gasnex::amo::execute(
                ctx.world.segment(target.rank()),
                target.offset(),
                op,
                operand,
                operand2,
                T::SIGNED,
            );
            if let FetchDest::Memory(r, off) = dest {
                ctx.world.segment(r).write_u64(off, prior);
            }
            cx.notify(&Notifier::sync(ctx, top, wrap(prior)))
        } else {
            bump(&ctx.stats.net_injected);
            let core = EventCore::new();
            let slot: Arc<Mutex<Option<V>>> = Arc::new(Mutex::new(None));
            let (rank, off) = (target.rank(), target.offset());
            let core2 = Arc::clone(&core);
            let slot2 = Arc::clone(&slot);
            let signed = T::SIGNED;
            let action: gasnex::net::NetAction = Box::new(move |w: &gasnex::World| {
                let prior =
                    gasnex::amo::execute(w.segment(rank), off, op, operand, operand2, signed);
                if let FetchDest::Memory(r, roff) = dest {
                    w.segment(r).write_u64(roff, prior);
                }
                *slot2.lock().unwrap() = Some(wrap(prior));
                core2.signal();
            });
            if aggregate {
                ctx.inject_routed(rank, top, action);
            } else {
                let msg = ctx.world.net_inject(action);
                ctx.trace_net_inject(top, msg);
            }
            cx.notify(&Notifier::pending(ctx, top, core, slot))
        }
    }

    fn issue_unit<C: Completions<()>>(
        &self,
        target: GlobalPtr<T>,
        op: AmoOp,
        operand: u64,
        operand2: u64,
        dest: FetchDest,
        cx: C,
    ) -> C::Out {
        // Only the pure-notification form coalesces: a fetch-into-memory op
        // still produces a prior value the caller may be polling for.
        let aggregate = matches!(dest, FetchDest::Notification);
        self.issue(target, op, operand, operand2, dest, aggregate, |_| (), cx)
    }

    fn issue_fetch<C: Completions<T>>(
        &self,
        target: GlobalPtr<T>,
        op: AmoOp,
        operand: u64,
        operand2: u64,
        cx: C,
    ) -> C::Out {
        self.issue(
            target,
            op,
            operand,
            operand2,
            FetchDest::Notification,
            false,
            T::from_bits,
            cx,
        )
    }

    fn check_into_available(&self) {
        assert!(
            self.ctx.version.has_nonfetching_fetch_amos(),
            "non-value-producing fetching atomics do not exist in UPC++ {}",
            self.ctx.version
        );
    }

    // ---- loads and stores -------------------------------------------------

    /// Atomic load.
    pub fn load(&self, p: GlobalPtr<T>) -> Future<T> {
        self.load_with(p, operation_cx::as_future())
    }
    /// Atomic load with explicit completions.
    pub fn load_with<C: Completions<T>>(&self, p: GlobalPtr<T>, cx: C) -> C::Out {
        self.issue_fetch(p, AmoOp::Get, 0, 0, cx)
    }

    /// Atomic store.
    pub fn store(&self, p: GlobalPtr<T>, v: T) -> Future<()> {
        self.store_with(p, v, operation_cx::as_future())
    }
    /// Atomic store with explicit completions.
    pub fn store_with<C: Completions<()>>(&self, p: GlobalPtr<T>, v: T, cx: C) -> C::Out {
        self.issue_unit(p, AmoOp::Set, v.to_bits(), 0, FetchDest::Notification, cx)
    }

    // ---- non-fetching updates (existed in all versions) -------------------

    /// Atomic swap, returning the prior value.
    pub fn exchange(&self, p: GlobalPtr<T>, v: T) -> Future<T> {
        self.exchange_with(p, v, operation_cx::as_future())
    }
    /// Atomic swap with explicit completions.
    pub fn exchange_with<C: Completions<T>>(&self, p: GlobalPtr<T>, v: T, cx: C) -> C::Out {
        self.issue_fetch(p, AmoOp::Swap, v.to_bits(), 0, cx)
    }

    /// Atomic compare-and-swap: if the word equals `expected`, store
    /// `desired`; the completion carries the prior value either way.
    pub fn compare_exchange(&self, p: GlobalPtr<T>, expected: T, desired: T) -> Future<T> {
        self.compare_exchange_with(p, expected, desired, operation_cx::as_future())
    }
    /// Compare-and-swap with explicit completions.
    pub fn compare_exchange_with<C: Completions<T>>(
        &self,
        p: GlobalPtr<T>,
        expected: T,
        desired: T,
        cx: C,
    ) -> C::Out {
        self.issue_fetch(
            p,
            AmoOp::CompareSwap,
            expected.to_bits(),
            desired.to_bits(),
            cx,
        )
    }

    // ---- fetching and non-fetching arithmetic ------------------------------

    fetch_family!(
        add,
        add_with,
        fetch_add,
        fetch_add_with,
        fetch_add_into,
        fetch_add_into_with,
        AmoOp::Add,
        AmoOp::FetchAdd,
        "add `v` to the word"
    );
    fetch_family!(
        sub,
        sub_with,
        fetch_sub,
        fetch_sub_with,
        fetch_sub_into,
        fetch_sub_into_with,
        AmoOp::Sub,
        AmoOp::FetchSub,
        "subtract `v` from the word"
    );
    fetch_family!(
        bit_and,
        bit_and_with,
        fetch_bit_and,
        fetch_bit_and_with,
        fetch_bit_and_into,
        fetch_bit_and_into_with,
        AmoOp::And,
        AmoOp::FetchAnd,
        "bitwise-AND `v` into the word"
    );
    fetch_family!(
        bit_or,
        bit_or_with,
        fetch_bit_or,
        fetch_bit_or_with,
        fetch_bit_or_into,
        fetch_bit_or_into_with,
        AmoOp::Or,
        AmoOp::FetchOr,
        "bitwise-OR `v` into the word"
    );
    fetch_family!(
        bit_xor,
        bit_xor_with,
        fetch_bit_xor,
        fetch_bit_xor_with,
        fetch_bit_xor_into,
        fetch_bit_xor_into_with,
        AmoOp::Xor,
        AmoOp::FetchXor,
        "bitwise-XOR `v` into the word"
    );
    fetch_family!(
        min,
        min_with,
        fetch_min,
        fetch_min_with,
        fetch_min_into,
        fetch_min_into_with,
        AmoOp::Min,
        AmoOp::FetchMin,
        "lower the word to `v` if smaller"
    );
    fetch_family!(
        max,
        max_with,
        fetch_max,
        fetch_max_with,
        fetch_max_into,
        fetch_max_into_with,
        AmoOp::Max,
        AmoOp::FetchMax,
        "raise the word to `v` if larger"
    );
}

#[cfg(test)]
mod tests {
    use crate::runtime::{launch, RuntimeConfig};

    #[test]
    fn full_op_surface_single_rank() {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 16), |u| {
            let w = u.new_::<u64>(10);
            let r = u.new_::<u64>(0);
            let ad = u.atomic_domain::<u64>();
            assert_eq!(ad.load(w).wait(), 10);
            ad.store(w, 20).wait();
            ad.add(w, 5).wait();
            ad.sub(w, 1).wait();
            ad.bit_or(w, 0x100).wait();
            ad.bit_and(w, !0x4).wait();
            ad.bit_xor(w, 0x1).wait();
            ad.min(w, 1000).wait();
            ad.max(w, 2).wait();
            let v = ad.load(w).wait();
            assert_eq!(v, ((20 + 5 - 1) | 0x100) & !0x4 ^ 0x1);
            assert_eq!(ad.fetch_add(w, 1).wait(), v);
            ad.fetch_sub_into(w, 1, r).wait();
            assert_eq!(u.local(r).get(), v + 1);
            assert_eq!(ad.load(w).wait(), v);
        });
    }

    #[test]
    fn counters_track_amos() {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 16), |u| {
            let w = u.new_::<u64>(0);
            let ad = u.atomic_domain::<u64>();
            u.reset_stats();
            for _ in 0..7 {
                ad.add(w, 1).wait();
            }
            assert_eq!(u.stats().amos, 7);
        });
    }

    #[test]
    fn signed_domain_arithmetic() {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 16), |u| {
            let w = u.new_::<i64>(-10);
            let ad = u.atomic_domain::<i64>();
            ad.add(w, 3).wait();
            assert_eq!(ad.load(w).wait(), -7);
            assert_eq!(ad.fetch_add(w, -3).wait(), -7);
            assert_eq!(ad.load(w).wait(), -10);
        });
    }
}
