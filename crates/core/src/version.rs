//! The three UPC++ library builds the paper compares.
//!
//! The reproduction keeps all three behaviours in one binary, selected per
//! runtime instance, so benchmarks can sweep them without rebuilding:
//!
//! | Build | Deferred-notification | Extra RMA alloc | `when_all` opt | ready-cell elision | non-fetching fetch-AMOs |
//! |---|---|---|---|---|---|
//! | `2021.3.0` | always | yes | no | no | unavailable |
//! | `2021.3.6 defer` | default (eager opt-in) | removed | yes | yes | yes |
//! | `2021.3.6 eager` | opt-in (eager default) | removed | yes | yes | yes |
//!
//! "2021.3.6 defer" models the paper's snapshot compiled with
//! `UPCXX_DEFER_COMPLETION`, which only flips the *default* of the plain
//! `as_future`/`as_promise` factories; the explicit `as_eager_*` /
//! `as_defer_*` factories behave identically in both 2021.3.6 builds.

use std::fmt;

/// Which UPC++ build semantics a runtime instance follows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LibVersion {
    /// The 2021.3.0 release: all notifications deferred, extra heap
    /// allocation on the directly-addressable RMA path.
    V2021_3_0,
    /// The 2021.3.6 snapshot with deferred notification as the default
    /// (`UPCXX_DEFER_COMPLETION`).
    V2021_3_6Defer,
    /// The 2021.3.6 snapshot with eager notification as the default — the
    /// paper's proposal.
    V2021_3_6Eager,
}

impl LibVersion {
    /// All versions, in the order the paper's figures present them.
    pub const ALL: [LibVersion; 3] = [
        LibVersion::V2021_3_0,
        LibVersion::V2021_3_6Defer,
        LibVersion::V2021_3_6Eager,
    ];

    /// Whether the plain `as_future` / `as_promise` factories request eager
    /// notification.
    #[inline]
    pub fn default_eager(self) -> bool {
        matches!(self, LibVersion::V2021_3_6Eager)
    }

    /// Whether the explicit `as_eager_*` factories exist in this build.
    #[inline]
    pub fn has_eager_factories(self) -> bool {
        !matches!(self, LibVersion::V2021_3_0)
    }

    /// Whether the extra heap allocation on the directly-addressable RMA
    /// path has been eliminated (the orthogonal 2021.3.6 optimization).
    #[inline]
    pub fn has_alloc_elision(self) -> bool {
        !matches!(self, LibVersion::V2021_3_0)
    }

    /// Whether `when_all` applies the ready-input conjoining optimization.
    #[inline]
    pub fn has_when_all_opt(self) -> bool {
        !matches!(self, LibVersion::V2021_3_0)
    }

    /// Whether ready value-less futures share a pre-allocated promise cell.
    #[inline]
    pub fn has_ready_cell_elision(self) -> bool {
        !matches!(self, LibVersion::V2021_3_0)
    }

    /// Whether the non-value-producing overloads of fetching atomics exist.
    #[inline]
    pub fn has_nonfetching_fetch_amos(self) -> bool {
        !matches!(self, LibVersion::V2021_3_0)
    }

    /// Whether `is_local` is compile-time true on the SMP conduit (the
    /// "constexpr `is_local`" optimization).
    #[inline]
    pub fn has_constexpr_is_local(self) -> bool {
        !matches!(self, LibVersion::V2021_3_0)
    }
}

impl fmt::Display for LibVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LibVersion::V2021_3_0 => "2021.3.0",
            LibVersion::V2021_3_6Defer => "2021.3.6 defer",
            LibVersion::V2021_3_6Eager => "2021.3.6 eager",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_matrix_matches_paper() {
        use LibVersion::*;
        assert!(!V2021_3_0.default_eager());
        assert!(!V2021_3_6Defer.default_eager());
        assert!(V2021_3_6Eager.default_eager());

        for v in [V2021_3_6Defer, V2021_3_6Eager] {
            assert!(v.has_alloc_elision());
            assert!(v.has_when_all_opt());
            assert!(v.has_ready_cell_elision());
            assert!(v.has_nonfetching_fetch_amos());
            assert!(v.has_eager_factories());
            assert!(v.has_constexpr_is_local());
        }
        assert!(!V2021_3_0.has_alloc_elision());
        assert!(!V2021_3_0.has_when_all_opt());
        assert!(!V2021_3_0.has_ready_cell_elision());
        assert!(!V2021_3_0.has_nonfetching_fetch_amos());
        assert!(!V2021_3_0.has_eager_factories());
        assert!(!V2021_3_0.has_constexpr_is_local());
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = LibVersion::ALL.iter().map(|v| v.to_string()).collect();
        assert_eq!(names, ["2021.3.0", "2021.3.6 defer", "2021.3.6 eager"]);
    }
}
