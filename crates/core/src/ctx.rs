//! Per-rank runtime context, thread-local access, and the progress engine.
//!
//! Every SPMD rank thread owns a [`RankCtx`]: its gasnex identity, the
//! configured library version, the deferred-notification queue (the paper's
//! "internal queue to be readied later by the progress engine"), the
//! RPC-reply continuation table, the shared ready unit cell, and statistics.
//!
//! The context is installed in thread-local storage for the duration of the
//! SPMD region so that futures (`wait`), free functions, and callbacks can
//! reach the progress engine without threading a handle everywhere.

use std::any::Any;
use std::cell::{Cell as StdCell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use gasnex::net::NetAction;
use gasnex::{Batch, ClockMode, Coalescer, ConduitKind, EventCore, FlushReason, Push, Rank, World};

use crate::continuation::{Callback, CallbackQueue, WorldShared};
use crate::future::cell::{shared_ready_unit_cell, Cell};
use crate::metrics::{MetricSeries, MetricsConfig};
use crate::stats::{add, bump, raise, Stats};
use crate::trace::{CompletionPath, OpKind, RankTracer, TraceOp};
use crate::version::LibVersion;

/// A rank-local continuation fed by a type-erased RPC reply payload.
pub(crate) type ReplyContinuation = Box<dyn FnOnce(Box<dyn Any + Send>)>;

/// A rank-local notification waiting for delivery by the progress engine.
///
/// In-flight events are *not* represented here: the signal-driven engine
/// registers them as event waiters whose completion tokens arrive on the
/// rank's ready queue (see [`RankCtx::register_on_event`]), so the deferred
/// queue never holds anything that would need re-polling against an event.
pub(crate) enum Deferred {
    /// The operation already completed synchronously, but the requested
    /// semantics defer its notification to the next progress call (legacy
    /// behaviour, and the explicit `as_defer_*` factories).
    Now(Box<dyn FnOnce()>),
    /// Deliver once an arbitrary condition holds (asynchronous collectives:
    /// the progress engine polls the predicate).
    OnCheck(Box<dyn Fn() -> bool>, Box<dyn FnOnce()>),
}

pub(crate) struct RankCtx {
    pub world: Arc<World>,
    pub me: Rank,
    pub version: LibVersion,
    /// `is_local` is compile-time-true: SMP conduit under a version with the
    /// constexpr optimization.
    pub assume_all_local: bool,
    pub deferred: RefCell<VecDeque<Deferred>>,
    /// Notification callbacks for in-flight events, keyed by the completion
    /// token routed through this rank's ready queue. The callback is
    /// inserted *before* the waiter is registered on the event, so a token
    /// surfacing from the ready queue always finds its callback.
    pub event_waiters: RefCell<HashMap<u64, Box<dyn FnOnce()>>>,
    pub next_token: StdCell<u64>,
    /// Reusable drain buffer for ready-queue tokens (one allocation per
    /// rank, not per quantum).
    ready_buf: RefCell<Vec<u64>>,
    /// RPC continuations keyed by reply id; executed when the reply AM
    /// arrives on this thread.
    pub replies: RefCell<HashMap<u64, ReplyContinuation>>,
    pub next_reply_id: StdCell<u64>,
    /// The pre-allocated ready cell shared by every ready `Future<()>`
    /// (when the version has the elision).
    pub ready_unit: Rc<Cell<()>>,
    /// This rank's statistics bank — shared with the background progress
    /// thread (which attributes callback runs it performs to the owning
    /// rank), hence the `Arc`.
    pub stats: Arc<Stats>,
    /// Every rank's cross-thread-visible slot (stats, callback queue,
    /// aggregation buffers), indexed by rank. `stats`/`callbacks`/`agg`
    /// above are clones of this rank's slot.
    pub shared: Arc<WorldShared>,
    /// Completed continuation callbacks awaiting execution on behalf of
    /// this rank.
    pub callbacks: Arc<CallbackQueue>,
    /// Whether the conduit clock is wall time. Idle-efficiency time
    /// accounting (`parked_ns`/`spinning_ns`/`progress_ns`) reads `Instant`
    /// only when this is set; virtual-clock runs keep the counters at zero
    /// so their exports stay byte-replayable.
    pub wall_clock: bool,
    /// Stall-watchdog timeout for parked waits
    /// ([`crate::RuntimeConfig::watchdog_ms`]).
    pub watchdog_ms: u64,
    /// Re-entrancy guard: progress calls from inside progress are no-ops.
    in_progress: StdCell<bool>,
    /// Set while this thread is executing a user continuation callback
    /// (inside the quantum's drain). `wait_signal` checks it: a callback
    /// that cannot park must not fall back to polling — progress is not
    /// reentrant, so the poll could never deliver the badge.
    pub(crate) in_callback: StdCell<bool>,
    /// Whether this rank's quantum also age-flushes *other* ranks' overdue
    /// aggregation buckets (the age-flush starvation fix). True only when
    /// aggregation is on with a nonzero `max_age_ns`: age-0 configs keep
    /// the owner-driven flushing, so their wire schedules are unchanged.
    foreign_age_flush: bool,
    /// Lifecycle-trace gate: the single predictably-taken branch every
    /// instrumentation site checks. Off by default.
    pub trace_on: StdCell<bool>,
    /// The per-rank span recorder (only touched when `trace_on` is set).
    pub tracer: RefCell<RankTracer>,
    /// Metric-sampling gate: like `trace_on`, one predictably-taken branch
    /// per progress quantum when off.
    pub metrics_on: StdCell<bool>,
    /// The per-rank metric sampler (only touched when `metrics_on` is set).
    pub metrics: RefCell<MetricSeries>,
    /// Sender-side aggregation buffers (`None` when the knob is off). The
    /// tag threaded through each buffered op is its trace span, so a batch
    /// flush can stamp every constituent's `NetInject` with the batch's
    /// wire message id. A clone of this rank's [`WorldShared`] slot: the
    /// progress thread (and foreign quanta, under age-based flushing) may
    /// flush overdue buckets, hence the mutex.
    pub agg: Arc<Mutex<Option<Coalescer<TraceOp>>>>,
}

impl RankCtx {
    pub fn new(world: Arc<World>, me: Rank, version: LibVersion, watchdog_ms: u64) -> Rc<RankCtx> {
        let shared = WorldShared::new(&world);
        Self::with_shared(world, me, version, watchdog_ms, shared)
    }

    /// Build a rank context over pre-built shared slots (`launch` creates
    /// one [`WorldShared`] and hands it to every rank and to the progress
    /// threads; [`RankCtx::new`] is the single-rank convenience that builds
    /// a private one).
    pub fn with_shared(
        world: Arc<World>,
        me: Rank,
        version: LibVersion,
        watchdog_ms: u64,
        shared: Arc<WorldShared>,
    ) -> Rc<RankCtx> {
        let assume_all_local =
            world.config().conduit == ConduitKind::Smp && version.has_constexpr_is_local();
        let agg_cfg = world.config().agg;
        let wall_clock = world.config().net.clock == ClockMode::Wall;
        let clocks = Arc::clone(world.clocks());
        let slot = &shared.slots[me.idx()];
        let (stats, callbacks, agg) = (
            Arc::clone(&slot.stats),
            Arc::clone(&slot.callbacks),
            Arc::clone(&slot.agg),
        );
        Rc::new(RankCtx {
            world,
            me,
            version,
            assume_all_local,
            deferred: RefCell::new(VecDeque::new()),
            event_waiters: RefCell::new(HashMap::new()),
            next_token: StdCell::new(0),
            ready_buf: RefCell::new(Vec::new()),
            replies: RefCell::new(HashMap::new()),
            next_reply_id: StdCell::new(0),
            ready_unit: shared_ready_unit_cell(),
            wall_clock,
            watchdog_ms,
            stats,
            shared,
            callbacks,
            in_progress: StdCell::new(false),
            in_callback: StdCell::new(false),
            foreign_age_flush: agg_cfg.enabled && agg_cfg.max_age_ns > 0,
            trace_on: StdCell::new(false),
            tracer: RefCell::new(RankTracer::with_clocks(me.0, clocks)),
            metrics_on: StdCell::new(false),
            metrics: RefCell::new(MetricSeries::new(MetricsConfig::default())),
            agg,
        })
    }

    /// Send `action` to `target`, through the aggregation layer when it is
    /// enabled (and the target's buffer is open), directly otherwise. The
    /// op's trace span gets its `NetInject` stamped with whichever wire
    /// message ends up carrying it — its own, or the flushed batch's.
    pub fn inject_routed(&self, target: Rank, top: TraceOp, action: NetAction) {
        let pushed = {
            let mut agg = self.agg.lock().unwrap();
            match agg.as_mut() {
                Some(a) => a.push(target.0 as usize, action, top, self.world.net()),
                None => {
                    drop(agg);
                    // Keep the routing hint: socket transports pick the
                    // node sockets from it, and the conduit's Lamport
                    // stamp lands on the initiating rank's clock slot
                    // instead of the shared unrouted slot.
                    let msg = self.world.net_inject_routed(self.me, target, action);
                    self.trace_net_inject(top, msg);
                    return;
                }
            }
        };
        match pushed {
            Push::Buffered => {}
            Push::Bypassed { msg } => self.trace_net_inject(top, msg),
            Push::Flushed(b) => self.trace_batch(&b),
        }
    }

    /// Stamp a flushed batch: every constituent op's `NetInject` carries
    /// the batch's wire message id, followed by one `BatchFlush` marker.
    fn trace_batch(&self, b: &Batch<TraceOp>) {
        if !self.trace_on.get() {
            return;
        }
        let ts = self.trace_now_ns();
        let mut tracer = self.tracer.borrow_mut();
        for &tag in &b.tags {
            tracer.net_inject(tag, b.msg, ts);
        }
        tracer.batch_flush(b.msg, b.ops, b.reason, ts);
    }

    fn trace_batches(&self, batches: &[Batch<TraceOp>]) -> usize {
        for b in batches {
            self.trace_batch(b);
        }
        batches.len()
    }

    /// Explicitly drain every aggregation buffer (barriers, quiescence,
    /// user-requested flush). Returns the number of batches injected.
    pub fn agg_flush_explicit(&self) -> usize {
        let batches = match self.agg.lock().unwrap().as_mut() {
            Some(a) => a.flush_all(self.world.net(), FlushReason::Explicit),
            None => return 0,
        };
        self.trace_batches(&batches)
    }

    /// The trace clock: the simulated network's wall/virtual time, so core
    /// spans and wire-level events share one timeline.
    #[inline]
    pub fn trace_now_ns(&self) -> u64 {
        self.world.net().now_ns()
    }

    /// Stamp a new traced operation (no-op returning [`TraceOp::NONE`]
    /// when tracing is off). `expect_notify` is false for fire-and-forget
    /// operations that never deliver a completion notification.
    #[inline]
    pub fn trace_op_init(&self, kind: OpKind, expect_notify: bool) -> TraceOp {
        if !self.trace_on.get() {
            return TraceOp::NONE;
        }
        let ts = self.trace_now_ns();
        self.tracer.borrow_mut().op_init(kind, ts, expect_notify)
    }

    /// Record that traced op `op` went onto the wire as message `msg`.
    #[inline]
    pub fn trace_net_inject(&self, op: TraceOp, msg: u64) {
        if self.trace_on.get() {
            let ts = self.trace_now_ns();
            self.tracer.borrow_mut().net_inject(op, msg, ts);
        }
    }

    /// Record `op`'s completion notification on `path` (and its latency).
    #[inline]
    pub fn trace_notify(&self, op: TraceOp, path: CompletionPath) {
        if self.trace_on.get() && !op.is_none() {
            let ts = self.trace_now_ns();
            self.tracer.borrow_mut().notify(op, path, ts);
        }
    }

    /// Record a `wait_signal` badge consumption on this rank.
    #[inline]
    pub fn trace_signal(&self, word: usize, badge: u64) {
        if self.trace_on.get() {
            let ts = self.trace_now_ns();
            self.tracer.borrow_mut().signal(word as u32, badge, ts);
        }
    }

    /// Whether `target`'s segment is directly addressable from this rank.
    #[inline]
    pub fn addressable(&self, target: Rank) -> bool {
        if self.assume_all_local {
            return true;
        }
        self.world.directly_addressable(self.me, target)
    }

    /// Allocate a fresh RPC reply id and register its continuation.
    pub fn register_reply(&self, k: ReplyContinuation) -> u64 {
        let id = self.next_reply_id.get();
        self.next_reply_id.set(id + 1);
        self.replies.borrow_mut().insert(id, k);
        id
    }

    /// Enqueue a rank-local deferred notification (`Now` or `OnCheck`).
    pub fn push_deferred(&self, d: Deferred) {
        bump(&self.stats.deferred_enqueued);
        self.deferred.borrow_mut().push_back(d);
        self.note_pending_highwater();
    }

    /// Register `f` to be delivered by this rank's progress engine once `ev`
    /// signals. Mints a completion token, files `f` under it, then asks the
    /// world to route the event's signal to this rank's ready queue. The
    /// callback is filed *before* the waiter is registered: an event that is
    /// already done runs the waiter on this thread immediately, depositing
    /// the token for the next quantum — exactly the poll-scan engine's
    /// "deliver at the next progress call" semantics.
    pub fn register_on_event(&self, ev: &Arc<EventCore>, f: Box<dyn FnOnce()>) {
        bump(&self.stats.deferred_enqueued);
        let token = self.next_token.get();
        self.next_token.set(token + 1);
        self.event_waiters.borrow_mut().insert(token, f);
        self.note_pending_highwater();
        self.world.route_signal(ev, self.me, token);
    }

    fn note_pending_highwater(&self) {
        let pending = (self.event_waiters.borrow().len()
            + self.deferred.borrow().len()
            + self.callbacks.len()) as u64;
        raise(&self.stats.pending_highwater, pending);
    }

    /// Enqueue a completed continuation for delivery by this rank's next
    /// callback drain (its own quantum, or the progress thread) — never
    /// inline on the caller.
    pub fn enqueue_callback(&self, cb: Callback, top: TraceOp) {
        let during_drain = self.callbacks.push(cb, top);
        if during_drain || self.in_callback.get() {
            bump(&self.stats.callbacks_deferred);
        }
        self.note_pending_highwater();
        self.world.wake_progress();
    }

    /// Drain this rank's callback FIFO (exclusive with the progress
    /// thread). Each callback is the completion notification of one op:
    /// it closes the op's trace span, feeds the latency histogram, and
    /// counts in `callbacks_run`.
    fn drain_callbacks(&self) -> usize {
        let q = Arc::clone(&self.callbacks);
        q.drain(|cb, top| {
            bump(&self.stats.callbacks_run);
            if self.trace_on.get() && !top.is_none() {
                let ts = self.trace_now_ns();
                let mut tracer = self.tracer.borrow_mut();
                tracer.notify(top, CompletionPath::Deferred, ts);
                tracer.callback_run(top, ts);
            }
            self.in_callback.set(true);
            cb();
            self.in_callback.set(false);
        })
    }

    /// One progress quantum of the signal-driven engine:
    ///
    /// 1. Drain incoming AMs and network deliveries (which may signal events
    ///    and thereby deposit completion tokens — including into this rank's
    ///    own ready queue).
    /// 2. Drain the ready queue: each token wakes exactly the notification
    ///    whose event signalled, in signal order — O(ready), not O(pending).
    /// 3. Deliver rank-local deferred entries: `Now` unconditionally,
    ///    `OnCheck` when its predicate holds (the only residual polling,
    ///    used by asynchronous collectives).
    ///
    /// Returns the number of work items processed. Re-entrant calls (from
    /// callbacks running inside progress) return 0 immediately, mirroring
    /// UPC++'s non-re-entrant progress engine.
    pub fn progress_quantum(&self) -> usize {
        if self.in_progress.get() {
            return 0;
        }
        if self.world.is_aborted() {
            panic!("another rank panicked; aborting rank {}", self.me);
        }
        self.in_progress.set(true);
        bump(&self.stats.progress_calls);
        // Idle-efficiency accounting: time spent inside the quantum is
        // "progress time". Wall clock only — virtual-clock runs must stay
        // deterministic, so they never read `Instant`.
        let quantum_start = self.wall_clock.then(std::time::Instant::now);
        let mut n = self.world.poll_rank(self.me, 64);

        // Ready-queue drain: bounded to the tokens present now (callbacks
        // may complete further operations, handled next quantum).
        let mut tokens = self.ready_buf.take();
        self.world.drain_ready(self.me, &mut tokens);
        for t in tokens.drain(..) {
            let f = self.event_waiters.borrow_mut().remove(&t);
            if let Some(f) = f {
                bump(&self.stats.event_wakeups);
                if self.trace_on.get() {
                    let ts = self.trace_now_ns();
                    self.tracer.borrow_mut().wakeup(t, ts);
                }
                f();
                n += 1;
            }
        }
        self.ready_buf.replace(tokens);
        // Every waiter still pending is one event the poll-scan engine
        // would have re-tested (and re-queued) this quantum.
        let residual = self.event_waiters.borrow().len() as u64;
        add(&self.stats.polls_elided, residual);

        // Deliver rank-local deferred notifications. Process at most the
        // entries present at entry (callbacks may enqueue more, handled next
        // quantum); keep unsatisfied checks, preserving their order.
        let quota = self.deferred.borrow().len();
        let mut kept: Vec<Deferred> = Vec::new();
        for _ in 0..quota {
            let Some(item) = self.deferred.borrow_mut().pop_front() else {
                break;
            };
            match item {
                Deferred::Now(f) => {
                    f();
                    n += 1;
                }
                Deferred::OnCheck(pred, f) => {
                    if pred() {
                        f();
                        n += 1;
                    } else {
                        kept.push(Deferred::OnCheck(pred, f));
                    }
                }
            }
        }
        if !kept.is_empty() {
            let mut q = self.deferred.borrow_mut();
            for item in kept.into_iter().rev() {
                q.push_front(item);
            }
        }
        // Run completed continuation callbacks — a drain-until-empty FIFO,
        // so callbacks enqueued by callbacks still settle this quantum,
        // never reentrantly.
        n += self.drain_callbacks();
        // Flush aged aggregation buffers. An otherwise-idle quantum
        // (n == 0) flushes everything buffered: with no other traffic the
        // virtual clock cannot advance, so the age timeout alone could
        // never fire — the backstop keeps waits live. A flush is work
        // (n counts it), so quiescence keeps spinning until the buffers
        // and their in-flight batches drain.
        let flushed = match self.agg.lock().unwrap().as_mut() {
            Some(a) => {
                if n == 0 {
                    a.flush_all(self.world.net(), FlushReason::Age)
                } else {
                    a.flush_due(self.world.net())
                }
            }
            None => Vec::new(),
        };
        n += self.trace_batches(&flushed);
        // Age-flush starvation fix: under age-based flushing, also flush
        // *other* ranks' overdue buckets — a sender that stopped calling
        // progress() cannot advance its own age trigger. Foreign batches
        // are injected (and counted as work) but not traced: the owner's
        // tracer belongs to its thread. try_lock keeps owners and the
        // progress thread from serializing on each other.
        if self.foreign_age_flush {
            for (r, slot) in self.shared.slots.iter().enumerate() {
                if r == self.me.idx() {
                    continue;
                }
                if let Ok(mut g) = slot.agg.try_lock() {
                    if let Some(a) = g.as_mut() {
                        n += a.flush_due(self.world.net()).len();
                    }
                }
            }
        }
        // Record only productive quanta: quiesce spins through millions of
        // idle ones, which would flood the ring with noise.
        if n > 0 && self.trace_on.get() {
            let ts = self.trace_now_ns();
            self.tracer.borrow_mut().drain(n as u64, ts);
        }
        // Sample the metric time-series at quantum end, when the quantum's
        // effects (wakeups, drains, injections) are visible in the
        // counters. Off-path cost: one branch.
        if self.metrics_on.get() {
            let now = self.trace_now_ns();
            self.metrics
                .borrow_mut()
                .maybe_sample(now, || crate::metrics::collect_values(self));
        }
        if let Some(start) = quantum_start {
            add(&self.stats.progress_ns, start.elapsed().as_nanos() as u64);
        }
        self.in_progress.set(false);
        n
    }

    /// Re-prime the pending-notifications high-water gauge to the current
    /// level (used after a stats reset: a gauge is a level, not a count,
    /// so it restarts from "now", not from zero).
    pub fn reprime_pending_highwater(&self) {
        let pending = (self.event_waiters.borrow().len()
            + self.deferred.borrow().len()
            + self.callbacks.len()) as u64;
        self.stats
            .pending_highwater
            .store(pending, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether this rank has locally visible outstanding work.
    pub fn locally_idle(&self) -> bool {
        self.deferred.borrow().is_empty()
            && self.event_waiters.borrow().is_empty()
            && self.callbacks.is_empty()
            && self.world.ready_queued(self.me) == 0
            && self.replies.borrow().is_empty()
            && self.world.ams_queued(self.me) == 0
            && self
                .agg
                .lock()
                .unwrap()
                .as_ref()
                .is_none_or(|a| a.buffered() == 0)
    }
}

thread_local! {
    static CTX: RefCell<Option<Rc<RankCtx>>> = const { RefCell::new(None) };
}

/// Install `ctx` as the thread's active rank context; restores the previous
/// one (normally `None`) on drop.
pub(crate) struct CtxGuard {
    prev: Option<Rc<RankCtx>>,
}

impl CtxGuard {
    pub fn install(ctx: Rc<RankCtx>) -> CtxGuard {
        let prev = CTX.with(|c| c.borrow_mut().replace(ctx));
        CtxGuard { prev }
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CTX.with(|c| *c.borrow_mut() = prev);
    }
}

/// Run `f` with the active context; panics if none (i.e. outside `launch`).
pub(crate) fn with_ctx<R>(f: impl FnOnce(&RankCtx) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let ctx = b
            .as_ref()
            .expect("this operation requires an active upcr runtime (inside Runtime::launch)");
        f(ctx)
    })
}

/// Run `f` with the active context if one exists.
pub(crate) fn try_with_ctx<R>(f: impl FnOnce(&RankCtx) -> R) -> Option<R> {
    CTX.with(|c| c.borrow().as_ref().map(|ctx| f(ctx)))
}

/// A clone of the active context handle; panics outside a `launch` region.
pub(crate) fn clone_current() -> Rc<RankCtx> {
    CTX.with(|c| {
        Rc::clone(
            c.borrow()
                .as_ref()
                .expect("this operation requires an active upcr runtime (inside Runtime::launch)"),
        )
    })
}

/// Drive one progress quantum on the active context. Returns `None` when no
/// runtime is active (so `Future::wait` can give a precise error), otherwise
/// the number of work items processed.
pub(crate) fn progress_with_work() -> Option<usize> {
    try_with_ctx(|ctx| ctx.progress_quantum())
}

/// Record an internal promise-cell allocation (no-op outside a runtime).
#[inline]
pub(crate) fn note_cell_alloc() {
    let _ = try_with_ctx(|ctx| bump(&ctx.stats.cell_allocs));
}

/// Whether the running version applies the `when_all` ready-input
/// optimization. Outside a runtime (pure future unit tests) the optimization
/// is on — the semantics are identical either way.
#[inline]
pub(crate) fn when_all_opt_enabled() -> bool {
    try_with_ctx(|ctx| ctx.version.has_when_all_opt()).unwrap_or(true)
}

#[inline]
pub(crate) fn note_when_all_fast() {
    let _ = try_with_ctx(|ctx| bump(&ctx.stats.when_all_fast));
}

#[inline]
pub(crate) fn note_when_all_node() {
    let _ = try_with_ctx(|ctx| bump(&ctx.stats.when_all_nodes));
}

/// Record a completion notification for `op` on the active rank, from
/// contexts (deferred closures, RPC replies, `when_all` fulfillment) that
/// don't hold a `RankCtx` reference. No-op outside a runtime, when tracing
/// is off, or for the `NONE` sentinel.
#[inline]
pub(crate) fn trace_notify(op: TraceOp, path: CompletionPath) {
    if !op.is_none() {
        let _ = try_with_ctx(|ctx| ctx.trace_notify(op, path));
    }
}

/// Stamp a traced op on the active rank (for call sites without a ctx
/// reference, e.g. `when_all`). Returns the `NONE` sentinel when tracing
/// is off or no runtime is active.
#[inline]
pub(crate) fn trace_op_init(kind: OpKind, expect_notify: bool) -> TraceOp {
    try_with_ctx(|ctx| ctx.trace_op_init(kind, expect_notify)).unwrap_or(TraceOp::NONE)
}

/// The cell behind a ready `Future<()>`: the shared pre-allocated cell when
/// the version elides the allocation, a fresh heap cell otherwise. Outside a
/// runtime, a fresh (uncounted) cell.
pub(crate) fn ready_unit_future_cell() -> Rc<Cell<()>> {
    try_with_ctx(|ctx| {
        if ctx.version.has_ready_cell_elision() {
            Rc::clone(&ctx.ready_unit)
        } else {
            crate::future::cell::new_ready_cell(())
        }
    })
    .unwrap_or_else(shared_ready_unit_cell)
}

/// Deliver an RPC reply payload to its registered continuation. Called from
/// the reply AM, which gasnex executes on the initiating thread during its
/// progress — so the continuation (which touches rank-local futures) runs on
/// the right thread.
pub(crate) fn deliver_reply(id: u64, payload: Box<dyn Any + Send>) {
    let k = with_ctx(|ctx| ctx.replies.borrow_mut().remove(&id))
        .unwrap_or_else(|| panic!("RPC reply {id} has no registered continuation"));
    k(payload);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnex::GasnexConfig;

    fn test_ctx() -> Rc<RankCtx> {
        let world = World::new(GasnexConfig::smp(1).with_segment_size(1 << 12));
        RankCtx::new(world, Rank(0), LibVersion::V2021_3_6Eager, 30_000)
    }

    #[test]
    fn guard_installs_and_restores() {
        assert!(try_with_ctx(|_| ()).is_none());
        {
            let _g = CtxGuard::install(test_ctx());
            assert!(try_with_ctx(|_| ()).is_some());
        }
        assert!(try_with_ctx(|_| ()).is_none());
    }

    #[test]
    fn deferred_now_runs_on_next_quantum() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let hit = Rc::new(StdCell::new(false));
        let h = Rc::clone(&hit);
        ctx.push_deferred(Deferred::Now(Box::new(move || h.set(true))));
        assert!(!hit.get());
        ctx.progress_quantum();
        assert!(hit.get());
        assert!(ctx.locally_idle());
    }

    #[test]
    fn registered_event_waits_for_signal() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let core = EventCore::new();
        let hit = Rc::new(StdCell::new(false));
        let h = Rc::clone(&hit);
        ctx.register_on_event(&core, Box::new(move || h.set(true)));
        ctx.progress_quantum();
        assert!(!hit.get(), "notification before event signal");
        assert!(!ctx.locally_idle(), "a pending waiter is outstanding work");
        core.signal();
        ctx.progress_quantum();
        assert!(hit.get());
        assert!(ctx.locally_idle());
    }

    #[test]
    fn already_signalled_event_delivers_next_quantum_not_inline() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let core = EventCore::new();
        core.signal();
        let hit = Rc::new(StdCell::new(false));
        let h = Rc::clone(&hit);
        ctx.register_on_event(&core, Box::new(move || h.set(true)));
        assert!(
            !hit.get(),
            "deferred semantics: never inline at registration"
        );
        ctx.progress_quantum();
        assert!(hit.get());
    }

    #[test]
    fn notification_order_preserved_across_quanta() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let log = Rc::new(RefCell::new(Vec::new()));
        let core = EventCore::new();
        for i in 0..4 {
            let log = Rc::clone(&log);
            if i == 1 {
                ctx.register_on_event(&core, Box::new(move || log.borrow_mut().push(i)));
            } else {
                ctx.push_deferred(Deferred::Now(Box::new(move || log.borrow_mut().push(i))));
            }
        }
        ctx.progress_quantum();
        // 1 is blocked on the event; everything else delivered in order.
        assert_eq!(*log.borrow(), vec![0, 2, 3]);
        core.signal();
        ctx.progress_quantum();
        assert_eq!(*log.borrow(), vec![0, 2, 3, 1]);
    }

    #[test]
    fn wakeups_follow_signal_order_not_registration_order() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let log = Rc::new(RefCell::new(Vec::new()));
        let evs: Vec<_> = (0..4).map(|_| EventCore::new()).collect();
        for (i, ev) in evs.iter().enumerate() {
            let log = Rc::clone(&log);
            ctx.register_on_event(ev, Box::new(move || log.borrow_mut().push(i)));
        }
        evs[3].signal();
        evs[1].signal();
        ctx.progress_quantum();
        assert_eq!(*log.borrow(), vec![3, 1]);
        evs[0].signal();
        evs[2].signal();
        ctx.progress_quantum();
        assert_eq!(*log.borrow(), vec![3, 1, 0, 2]);
    }

    #[test]
    fn one_signal_among_many_pending_wakes_exactly_one() {
        // The structural claim of the signal-driven engine: with K pending
        // operations and one completed, a quantum delivers that one
        // notification via a ready token — it does not re-test the other K.
        const K: usize = 64;
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let evs: Vec<_> = (0..=K).map(|_| EventCore::new()).collect();
        let fired = Rc::new(StdCell::new(0usize));
        for ev in &evs {
            let f = Rc::clone(&fired);
            ctx.register_on_event(ev, Box::new(move || f.set(f.get() + 1)));
        }
        assert_eq!(ctx.stats.snapshot().pending_highwater, (K + 1) as u64);
        evs[7].signal();
        let before = ctx.stats.snapshot();
        ctx.progress_quantum();
        let d = ctx.stats.snapshot().since(&before);
        assert_eq!(fired.get(), 1);
        assert_eq!(d.event_wakeups, 1, "exactly the signalled op woke");
        assert_eq!(
            d.polls_elided, K as u64,
            "the K pending ops were not re-tested"
        );
        // An idle quantum with K pending still tests nothing.
        let before = ctx.stats.snapshot();
        ctx.progress_quantum();
        let d = ctx.stats.snapshot().since(&before);
        assert_eq!(d.event_wakeups, 0);
        assert_eq!(d.polls_elided, K as u64);
        for ev in &evs {
            ev.signal();
        }
        ctx.progress_quantum();
        assert_eq!(fired.get(), K + 1);
        assert!(ctx.locally_idle());
    }

    #[test]
    fn progress_is_not_reentrant() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let ctx2 = Rc::clone(&ctx);
        let nested = Rc::new(StdCell::new(usize::MAX));
        let n2 = Rc::clone(&nested);
        ctx.push_deferred(Deferred::Now(Box::new(move || {
            n2.set(ctx2.progress_quantum());
        })));
        ctx.progress_quantum();
        assert_eq!(nested.get(), 0, "nested progress must be a no-op");
    }

    #[test]
    fn callback_enqueueing_deferred_is_deferred_to_next_quantum() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let ctx2 = Rc::clone(&ctx);
        let hit = Rc::new(StdCell::new(0));
        let h1 = Rc::clone(&hit);
        ctx.push_deferred(Deferred::Now(Box::new(move || {
            h1.set(1);
            let h2 = Rc::clone(&h1);
            ctx2.push_deferred(Deferred::Now(Box::new(move || h2.set(2))));
        })));
        ctx.progress_quantum();
        assert_eq!(hit.get(), 1);
        ctx.progress_quantum();
        assert_eq!(hit.get(), 2);
    }

    #[test]
    fn ready_unit_cell_shared_under_eager() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let a = ready_unit_future_cell();
        let b = ready_unit_future_cell();
        assert!(
            Rc::ptr_eq(&a, &b),
            "elided ready cells must be the shared singleton"
        );
        assert_eq!(ctx.stats.snapshot().cell_allocs, 0);
    }

    #[test]
    fn ready_unit_cell_fresh_under_legacy() {
        let world = World::new(GasnexConfig::smp(1).with_segment_size(1 << 12));
        let ctx = RankCtx::new(world, Rank(0), LibVersion::V2021_3_0, 30_000);
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let a = ready_unit_future_cell();
        let b = ready_unit_future_cell();
        assert!(!Rc::ptr_eq(&a, &b), "2021.3.0 allocates each ready cell");
        assert_eq!(ctx.stats.snapshot().cell_allocs, 2);
    }

    #[test]
    fn assume_all_local_only_on_smp_with_new_version() {
        let smp = World::new(GasnexConfig::smp(2).with_segment_size(1 << 12));
        assert!(
            RankCtx::new(
                Arc::clone(&smp),
                Rank(0),
                LibVersion::V2021_3_6Eager,
                30_000
            )
            .assume_all_local
        );
        assert!(!RankCtx::new(smp, Rank(0), LibVersion::V2021_3_0, 30_000).assume_all_local);
        let udp = World::new(GasnexConfig::udp(2, 1).with_segment_size(1 << 12));
        assert!(!RankCtx::new(udp, Rank(0), LibVersion::V2021_3_6Eager, 30_000).assume_all_local);
    }
}
