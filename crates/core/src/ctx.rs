//! Per-rank runtime context, thread-local access, and the progress engine.
//!
//! Every SPMD rank thread owns a [`RankCtx`]: its gasnex identity, the
//! configured library version, the deferred-notification queue (the paper's
//! "internal queue to be readied later by the progress engine"), the
//! RPC-reply continuation table, the shared ready unit cell, and statistics.
//!
//! The context is installed in thread-local storage for the duration of the
//! SPMD region so that futures (`wait`), free functions, and callbacks can
//! reach the progress engine without threading a handle everywhere.

use std::any::Any;
use std::cell::{Cell as StdCell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use gasnex::{Conduit, EventCore, Rank, World};

use crate::future::cell::{shared_ready_unit_cell, Cell};
use crate::stats::{bump, Stats};
use crate::version::LibVersion;

/// A rank-local continuation fed by a type-erased RPC reply payload.
pub(crate) type ReplyContinuation = Box<dyn FnOnce(Box<dyn Any + Send>)>;

/// A notification waiting for delivery by the progress engine.
pub(crate) enum Deferred {
    /// The operation already completed synchronously, but the requested
    /// semantics defer its notification to the next progress call (legacy
    /// behaviour, and the explicit `as_defer_*` factories).
    Now(Box<dyn FnOnce()>),
    /// The operation is in flight; deliver the notification once its event
    /// signals.
    OnEvent(Arc<EventCore>, Box<dyn FnOnce()>),
    /// Deliver once an arbitrary condition holds (asynchronous collectives:
    /// the progress engine polls the predicate).
    OnCheck(Box<dyn Fn() -> bool>, Box<dyn FnOnce()>),
}

pub(crate) struct RankCtx {
    pub world: Arc<World>,
    pub me: Rank,
    pub version: LibVersion,
    /// `is_local` is compile-time-true: SMP conduit under a version with the
    /// constexpr optimization.
    pub assume_all_local: bool,
    pub deferred: RefCell<VecDeque<Deferred>>,
    /// RPC continuations keyed by reply id; executed when the reply AM
    /// arrives on this thread.
    pub replies: RefCell<HashMap<u64, ReplyContinuation>>,
    pub next_reply_id: StdCell<u64>,
    /// The pre-allocated ready cell shared by every ready `Future<()>`
    /// (when the version has the elision).
    pub ready_unit: Rc<Cell<()>>,
    pub stats: Stats,
    /// Re-entrancy guard: progress calls from inside progress are no-ops.
    in_progress: StdCell<bool>,
}

impl RankCtx {
    pub fn new(world: Arc<World>, me: Rank, version: LibVersion) -> Rc<RankCtx> {
        let assume_all_local =
            world.config().conduit == Conduit::Smp && version.has_constexpr_is_local();
        Rc::new(RankCtx {
            world,
            me,
            version,
            assume_all_local,
            deferred: RefCell::new(VecDeque::new()),
            replies: RefCell::new(HashMap::new()),
            next_reply_id: StdCell::new(0),
            ready_unit: shared_ready_unit_cell(),
            stats: Stats::default(),
            in_progress: StdCell::new(false),
        })
    }

    /// Whether `target`'s segment is directly addressable from this rank.
    #[inline]
    pub fn addressable(&self, target: Rank) -> bool {
        if self.assume_all_local {
            return true;
        }
        self.world.directly_addressable(self.me, target)
    }

    /// Allocate a fresh RPC reply id and register its continuation.
    pub fn register_reply(&self, k: ReplyContinuation) -> u64 {
        let id = self.next_reply_id.get();
        self.next_reply_id.set(id + 1);
        self.replies.borrow_mut().insert(id, k);
        id
    }

    /// Enqueue a deferred notification.
    pub fn push_deferred(&self, d: Deferred) {
        bump(&self.stats.deferred_enqueued);
        self.deferred.borrow_mut().push_back(d);
    }

    /// One progress quantum: drain incoming AMs and network deliveries, then
    /// deliver due deferred notifications. Returns the number of work items
    /// processed. Re-entrant calls (from callbacks running inside progress)
    /// return 0 immediately, mirroring UPC++'s non-re-entrant progress
    /// engine.
    pub fn progress_quantum(&self) -> usize {
        if self.in_progress.get() {
            return 0;
        }
        if self.world.is_aborted() {
            panic!("another rank panicked; aborting rank {}", self.me);
        }
        self.in_progress.set(true);
        bump(&self.stats.progress_calls);
        let mut n = self.world.poll_rank(self.me, 64);

        // Deliver deferred notifications. Process at most the entries
        // present at entry (callbacks may enqueue more, handled next
        // quantum); keep un-signalled event waiters, preserving their order.
        let quota = self.deferred.borrow().len();
        let mut kept: Vec<Deferred> = Vec::new();
        for _ in 0..quota {
            let Some(item) = self.deferred.borrow_mut().pop_front() else { break };
            match item {
                Deferred::Now(f) => {
                    f();
                    n += 1;
                }
                Deferred::OnEvent(ev, f) => {
                    if ev.is_done() {
                        f();
                        n += 1;
                    } else {
                        kept.push(Deferred::OnEvent(ev, f));
                    }
                }
                Deferred::OnCheck(pred, f) => {
                    if pred() {
                        f();
                        n += 1;
                    } else {
                        kept.push(Deferred::OnCheck(pred, f));
                    }
                }
            }
        }
        if !kept.is_empty() {
            let mut q = self.deferred.borrow_mut();
            for item in kept.into_iter().rev() {
                q.push_front(item);
            }
        }
        self.in_progress.set(false);
        n
    }

    /// Whether this rank has locally visible outstanding work.
    pub fn locally_idle(&self) -> bool {
        self.deferred.borrow().is_empty()
            && self.replies.borrow().is_empty()
            && self.world.ams_queued(self.me) == 0
    }
}

thread_local! {
    static CTX: RefCell<Option<Rc<RankCtx>>> = const { RefCell::new(None) };
}

/// Install `ctx` as the thread's active rank context; restores the previous
/// one (normally `None`) on drop.
pub(crate) struct CtxGuard {
    prev: Option<Rc<RankCtx>>,
}

impl CtxGuard {
    pub fn install(ctx: Rc<RankCtx>) -> CtxGuard {
        let prev = CTX.with(|c| c.borrow_mut().replace(ctx));
        CtxGuard { prev }
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CTX.with(|c| *c.borrow_mut() = prev);
    }
}

/// Run `f` with the active context; panics if none (i.e. outside `launch`).
pub(crate) fn with_ctx<R>(f: impl FnOnce(&RankCtx) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let ctx = b
            .as_ref()
            .expect("this operation requires an active upcr runtime (inside Runtime::launch)");
        f(ctx)
    })
}

/// Run `f` with the active context if one exists.
pub(crate) fn try_with_ctx<R>(f: impl FnOnce(&RankCtx) -> R) -> Option<R> {
    CTX.with(|c| c.borrow().as_ref().map(|ctx| f(ctx)))
}

/// A clone of the active context handle; panics outside a `launch` region.
pub(crate) fn clone_current() -> Rc<RankCtx> {
    CTX.with(|c| {
        Rc::clone(c.borrow().as_ref().expect(
            "this operation requires an active upcr runtime (inside Runtime::launch)",
        ))
    })
}

/// Drive one progress quantum on the active context. Returns `None` when no
/// runtime is active (so `Future::wait` can give a precise error), otherwise
/// the number of work items processed.
pub(crate) fn progress_with_work() -> Option<usize> {
    try_with_ctx(|ctx| ctx.progress_quantum())
}

/// Record an internal promise-cell allocation (no-op outside a runtime).
#[inline]
pub(crate) fn note_cell_alloc() {
    let _ = try_with_ctx(|ctx| bump(&ctx.stats.cell_allocs));
}

/// Whether the running version applies the `when_all` ready-input
/// optimization. Outside a runtime (pure future unit tests) the optimization
/// is on — the semantics are identical either way.
#[inline]
pub(crate) fn when_all_opt_enabled() -> bool {
    try_with_ctx(|ctx| ctx.version.has_when_all_opt()).unwrap_or(true)
}

#[inline]
pub(crate) fn note_when_all_fast() {
    let _ = try_with_ctx(|ctx| bump(&ctx.stats.when_all_fast));
}

#[inline]
pub(crate) fn note_when_all_node() {
    let _ = try_with_ctx(|ctx| bump(&ctx.stats.when_all_nodes));
}

/// The cell behind a ready `Future<()>`: the shared pre-allocated cell when
/// the version elides the allocation, a fresh heap cell otherwise. Outside a
/// runtime, a fresh (uncounted) cell.
pub(crate) fn ready_unit_future_cell() -> Rc<Cell<()>> {
    try_with_ctx(|ctx| {
        if ctx.version.has_ready_cell_elision() {
            Rc::clone(&ctx.ready_unit)
        } else {
            crate::future::cell::new_ready_cell(())
        }
    })
    .unwrap_or_else(shared_ready_unit_cell)
}

/// Deliver an RPC reply payload to its registered continuation. Called from
/// the reply AM, which gasnex executes on the initiating thread during its
/// progress — so the continuation (which touches rank-local futures) runs on
/// the right thread.
pub(crate) fn deliver_reply(id: u64, payload: Box<dyn Any + Send>) {
    let k = with_ctx(|ctx| ctx.replies.borrow_mut().remove(&id))
        .unwrap_or_else(|| panic!("RPC reply {id} has no registered continuation"));
    k(payload);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnex::GasnexConfig;

    fn test_ctx() -> Rc<RankCtx> {
        let world = World::new(GasnexConfig::smp(1).with_segment_size(1 << 12));
        RankCtx::new(world, Rank(0), LibVersion::V2021_3_6Eager)
    }

    #[test]
    fn guard_installs_and_restores() {
        assert!(try_with_ctx(|_| ()).is_none());
        {
            let _g = CtxGuard::install(test_ctx());
            assert!(try_with_ctx(|_| ()).is_some());
        }
        assert!(try_with_ctx(|_| ()).is_none());
    }

    #[test]
    fn deferred_now_runs_on_next_quantum() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let hit = Rc::new(StdCell::new(false));
        let h = Rc::clone(&hit);
        ctx.push_deferred(Deferred::Now(Box::new(move || h.set(true))));
        assert!(!hit.get());
        ctx.progress_quantum();
        assert!(hit.get());
        assert!(ctx.locally_idle());
    }

    #[test]
    fn deferred_on_event_waits_for_signal() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let core = EventCore::new();
        let hit = Rc::new(StdCell::new(false));
        let h = Rc::clone(&hit);
        ctx.push_deferred(Deferred::OnEvent(Arc::clone(&core), Box::new(move || h.set(true))));
        ctx.progress_quantum();
        assert!(!hit.get(), "notification before event signal");
        core.signal();
        ctx.progress_quantum();
        assert!(hit.get());
    }

    #[test]
    fn notification_order_preserved_across_quanta() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let log = Rc::new(RefCell::new(Vec::new()));
        let core = EventCore::new();
        for i in 0..4 {
            let log = Rc::clone(&log);
            if i == 1 {
                ctx.push_deferred(Deferred::OnEvent(
                    Arc::clone(&core),
                    Box::new(move || log.borrow_mut().push(i)),
                ));
            } else {
                ctx.push_deferred(Deferred::Now(Box::new(move || log.borrow_mut().push(i))));
            }
        }
        ctx.progress_quantum();
        // 1 is blocked on the event; everything else delivered in order.
        assert_eq!(*log.borrow(), vec![0, 2, 3]);
        core.signal();
        ctx.progress_quantum();
        assert_eq!(*log.borrow(), vec![0, 2, 3, 1]);
    }

    #[test]
    fn progress_is_not_reentrant() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let ctx2 = Rc::clone(&ctx);
        let nested = Rc::new(StdCell::new(usize::MAX));
        let n2 = Rc::clone(&nested);
        ctx.push_deferred(Deferred::Now(Box::new(move || {
            n2.set(ctx2.progress_quantum());
        })));
        ctx.progress_quantum();
        assert_eq!(nested.get(), 0, "nested progress must be a no-op");
    }

    #[test]
    fn callback_enqueueing_deferred_is_deferred_to_next_quantum() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let ctx2 = Rc::clone(&ctx);
        let hit = Rc::new(StdCell::new(0));
        let h1 = Rc::clone(&hit);
        ctx.push_deferred(Deferred::Now(Box::new(move || {
            h1.set(1);
            let h2 = Rc::clone(&h1);
            ctx2.push_deferred(Deferred::Now(Box::new(move || h2.set(2))));
        })));
        ctx.progress_quantum();
        assert_eq!(hit.get(), 1);
        ctx.progress_quantum();
        assert_eq!(hit.get(), 2);
    }

    #[test]
    fn ready_unit_cell_shared_under_eager() {
        let ctx = test_ctx();
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let a = ready_unit_future_cell();
        let b = ready_unit_future_cell();
        assert!(Rc::ptr_eq(&a, &b), "elided ready cells must be the shared singleton");
        assert_eq!(ctx.stats.snapshot().cell_allocs, 0);
    }

    #[test]
    fn ready_unit_cell_fresh_under_legacy() {
        let world = World::new(GasnexConfig::smp(1).with_segment_size(1 << 12));
        let ctx = RankCtx::new(world, Rank(0), LibVersion::V2021_3_0);
        let _g = CtxGuard::install(Rc::clone(&ctx));
        let a = ready_unit_future_cell();
        let b = ready_unit_future_cell();
        assert!(!Rc::ptr_eq(&a, &b), "2021.3.0 allocates each ready cell");
        assert_eq!(ctx.stats.snapshot().cell_allocs, 2);
    }

    #[test]
    fn assume_all_local_only_on_smp_with_new_version() {
        let smp = World::new(GasnexConfig::smp(2).with_segment_size(1 << 12));
        assert!(RankCtx::new(Arc::clone(&smp), Rank(0), LibVersion::V2021_3_6Eager).assume_all_local);
        assert!(!RankCtx::new(smp, Rank(0), LibVersion::V2021_3_0).assume_all_local);
        let udp = World::new(GasnexConfig::udp(2, 1).with_segment_size(1 << 12));
        assert!(!RankCtx::new(udp, Rank(0), LibVersion::V2021_3_6Eager).assume_all_local);
    }
}
