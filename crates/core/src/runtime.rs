//! Runtime launch and the per-rank handle.
//!
//! [`launch`] runs an SPMD closure on `ranks` threads, each modelling one
//! UPC++ process. The closure receives an [`Upcr`] handle carrying that
//! rank's identity and configuration; communication operations are methods
//! on it (see [`crate::rma`], [`crate::atomics`], [`crate::rpc`]).

use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use gasnex::{ClockMode, GasnexConfig, NetConfig, Rank, Team, World};

use crate::continuation::{ProgressWaker, WorldShared};
use crate::ctx::{CtxGuard, RankCtx};
use crate::future::Future;
use crate::global_ptr::{GlobalPtr, LocalRef, SegValue};
use crate::stats::{add, bump, raise, StatsSnapshot};
use crate::version::LibVersion;

/// Configuration of a `upcr` runtime: substrate layout plus which UPC++
/// build semantics to follow.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Substrate (conduit, ranks, nodes, segments, network).
    pub gasnex: GasnexConfig,
    /// Library version semantics (defaults to "2021.3.6 eager").
    pub version: LibVersion,
    /// Stall-watchdog timeout in milliseconds: how long a parked
    /// `wait_signal` sleeps before the watchdog walks the wait graph and
    /// panics with a stall diagnosis (see [`crate::introspect`]). Only
    /// wall-clock parks arm the watchdog; virtual-clock waits poll
    /// deterministically and are bounded by quiescence instead.
    pub watchdog_ms: u64,
    /// Spawn one background progress thread per simulated node, driving
    /// `Conduit::poll`, coalescer age-flushes, and continuation-callback
    /// drains on a parked-condvar cadence (woken by injections and
    /// callback enqueues). Strict no-op — not even spawned — under
    /// [`gasnex::ClockMode::Virtual`], so every chaos/differential
    /// schedule stays byte-replayable.
    pub progress_thread: bool,
}

/// Default [`RuntimeConfig::watchdog_ms`]: generous — a healthy signal
/// crosses the loopback wire in microseconds, so 30s means nobody will
/// ever post the badge.
pub const DEFAULT_WATCHDOG_MS: u64 = 30_000;

impl RuntimeConfig {
    /// Single-node SMP runtime with `ranks` ranks.
    pub fn smp(ranks: usize) -> Self {
        RuntimeConfig {
            gasnex: GasnexConfig::smp(ranks),
            version: LibVersion::V2021_3_6Eager,
            watchdog_ms: DEFAULT_WATCHDOG_MS,
            progress_thread: false,
        }
    }

    /// Multi-node UDP-conduit runtime.
    pub fn udp(ranks: usize, ranks_per_node: usize) -> Self {
        RuntimeConfig {
            gasnex: GasnexConfig::udp(ranks, ranks_per_node),
            version: LibVersion::V2021_3_6Eager,
            watchdog_ms: DEFAULT_WATCHDOG_MS,
            progress_thread: false,
        }
    }

    /// Multi-node MPI-conduit runtime.
    pub fn mpi(ranks: usize, ranks_per_node: usize) -> Self {
        RuntimeConfig {
            gasnex: GasnexConfig::mpi(ranks, ranks_per_node),
            version: LibVersion::V2021_3_6Eager,
            watchdog_ms: DEFAULT_WATCHDOG_MS,
            progress_thread: false,
        }
    }

    /// Select the library version semantics.
    pub fn with_version(mut self, v: LibVersion) -> Self {
        self.version = v;
        self
    }

    /// Override the stall-watchdog timeout (milliseconds). Tests and the
    /// watchdog smoke job set this low to turn a would-be hang into a
    /// prompt, diagnosable failure.
    pub fn with_watchdog_ms(mut self, ms: u64) -> Self {
        self.watchdog_ms = ms;
        self
    }

    /// Override the per-rank segment size in bytes.
    pub fn with_segment_size(mut self, bytes: usize) -> Self {
        self.gasnex = self.gasnex.with_segment_size(bytes);
        self
    }

    /// Override the simulated network parameters.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.gasnex = self.gasnex.with_net(net);
        self
    }

    /// Configure per-target message aggregation (see [`gasnex::AggConfig`]).
    pub fn with_agg(mut self, agg: gasnex::AggConfig) -> Self {
        self.gasnex = self.gasnex.with_agg(agg);
        self
    }

    /// Select the wire implementation (see [`gasnex::Transport`]).
    pub fn with_transport(mut self, transport: gasnex::Transport) -> Self {
        self.gasnex = self.gasnex.with_transport(transport);
        self
    }

    /// Enable the per-node background progress thread (see
    /// [`RuntimeConfig::progress_thread`]). Wall-clock only: under
    /// [`gasnex::ClockMode::Virtual`] the flag is accepted but no thread
    /// is spawned, keeping deterministic runs byte-replayable.
    pub fn with_progress_thread(mut self, on: bool) -> Self {
        self.progress_thread = on;
        self
    }
}

/// The per-rank runtime handle. Not `Send`: it belongs to its rank's thread,
/// like a UPC++ persona.
pub struct Upcr {
    pub(crate) ctx: Rc<RankCtx>,
}

/// Run `f` as an SPMD program over the configured ranks and return every
/// rank's result, indexed by rank.
///
/// Ranks synchronize on entry; on exit the runtime quiesces (drains all
/// outstanding AMs, network deliveries, and deferred notifications) before
/// tearing down, so fire-and-forget traffic cannot be lost.
///
/// Panics in any rank propagate out of `launch`.
pub fn launch<F, R>(cfg: RuntimeConfig, f: F) -> Vec<R>
where
    F: Fn(&Upcr) -> R + Sync,
    R: Send,
{
    cfg.gasnex.validate();
    let world = World::new(cfg.gasnex.clone());
    let shared = WorldShared::new(&world);
    let version = cfg.version;
    let watchdog_ms = cfg.watchdog_ms;
    let ranks = cfg.gasnex.ranks;
    // The background progress thread exists only on the wall clock: under
    // the virtual clock it is a strict no-op (never spawned), so every
    // seeded chaos/differential schedule stays byte-replayable.
    let progress_threads_on = cfg.progress_thread && cfg.gasnex.net.clock == ClockMode::Wall;
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let waker = Arc::new(ProgressWaker::default());
    if progress_threads_on {
        let w = Arc::clone(&waker);
        world
            .net()
            .set_progress_waker(Some(Arc::new(move || w.wake())));
    }
    std::thread::scope(|s| {
        let mut pthreads = Vec::new();
        if progress_threads_on {
            let topo = world.topology();
            for node in 0..topo.nodes() {
                let node_ranks: Vec<usize> = topo.node_ranks(node).map(|r| r as usize).collect();
                let world = Arc::clone(&world);
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                let waker = Arc::clone(&waker);
                pthreads.push(s.spawn(move || {
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        progress_thread_loop(&world, &shared, &node_ranks, &stop, &waker);
                    }));
                    if run.is_err() {
                        // A panicking user callback on this thread must not
                        // leave the ranks hanging in barriers.
                        world.abort();
                    }
                }));
            }
        }
        let mut handles = Vec::with_capacity(ranks);
        for r in 0..ranks {
            let world = Arc::clone(&world);
            let shared = Arc::clone(&shared);
            let f = &f;
            handles.push(s.spawn(move || {
                let ctx = RankCtx::with_shared(
                    Arc::clone(&world),
                    Rank::from_idx(r),
                    version,
                    watchdog_ms,
                    shared,
                );
                let _guard = CtxGuard::install(Rc::clone(&ctx));
                let u = Upcr { ctx };
                u.barrier();
                // A panicking rank marks the world aborted so peers bail out
                // of barriers and waits instead of deadlocking.
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&u))) {
                    Ok(out) => {
                        u.quiesce();
                        crate::dist_object::reset_registry();
                        out
                    }
                    Err(payload) => {
                        world.abort();
                        crate::dist_object::reset_registry();
                        std::panic::resume_unwind(payload);
                    }
                }
            }));
        }
        // Collect every rank's result BEFORE re-raising any panic: the
        // progress threads must be stopped and joined first, or an early
        // resume_unwind would leave them running and hang the scope.
        let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        stop.store(true, std::sync::atomic::Ordering::Release);
        waker.wake();
        for t in pthreads {
            let _ = t.join();
        }
        if progress_threads_on {
            world.net().set_progress_waker(None);
        }
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Body of one per-node background progress thread: poll the conduit,
/// drain the node's continuation callbacks, flush overdue coalescer
/// buckets, then park on the waker until the cadence elapses or an
/// injection/enqueue wakes it. Poll and wakeup counts are attributed to
/// the node's first rank.
fn progress_thread_loop(
    world: &Arc<World>,
    shared: &WorldShared,
    node_ranks: &[usize],
    stop: &std::sync::atomic::AtomicBool,
    waker: &ProgressWaker,
) {
    use std::sync::atomic::Ordering;
    let home = &shared.slots[node_ranks[0]].stats;
    let agg_cfg = world.config().agg;
    let age_flush = agg_cfg.enabled && agg_cfg.max_age_ns > 0;
    while !stop.load(Ordering::Acquire) && !world.is_aborted() {
        bump(&home.progress_thread_polls);
        let mut did = world.net().poll(world);
        for &r in node_ranks {
            let slot = &shared.slots[r];
            // Untraced drain: the rank's tracer belongs to its own thread.
            did += slot.callbacks.drain(|cb, _top| {
                bump(&slot.stats.callbacks_run);
                cb();
            });
            // The age-flush starvation fix: a bucket whose owner stopped
            // calling progress() can never reach its age trigger by
            // itself; flush it here. try_lock keeps the owner's own
            // quantum from serializing against this thread.
            if age_flush {
                if let Ok(mut g) = slot.agg.try_lock() {
                    if let Some(a) = g.as_mut() {
                        did += a.flush_due(world.net()).len();
                    }
                }
            }
        }
        if did == 0 && waker.wait(std::time::Duration::from_micros(100)) {
            bump(&home.progress_thread_wakeups);
        }
    }
}

impl Upcr {
    // ---- identity -----------------------------------------------------------

    /// This rank's index in the world.
    #[inline]
    pub fn rank_me(&self) -> usize {
        self.ctx.me.idx()
    }

    /// This rank as a [`Rank`].
    #[inline]
    pub fn me(&self) -> Rank {
        self.ctx.me
    }

    /// Total number of ranks.
    #[inline]
    pub fn rank_n(&self) -> usize {
        self.ctx.world.ranks()
    }

    /// The library version semantics in force.
    pub fn version(&self) -> LibVersion {
        self.ctx.version
    }

    /// The underlying substrate world (topology, network, segments).
    pub fn world(&self) -> &Arc<World> {
        &self.ctx.world
    }

    /// The team of all ranks.
    pub fn world_team(&self) -> Team {
        self.ctx.world.world_team()
    }

    /// The team of ranks sharing this rank's simulated node.
    pub fn local_team(&self) -> Team {
        self.ctx.world.local_team(self.ctx.me)
    }

    // ---- progress and synchronization ----------------------------------------

    /// Run one user-level progress quantum: execute incoming RPCs, poll the
    /// network, and deliver due deferred notifications.
    pub fn progress(&self) {
        self.ctx.progress_quantum();
    }

    /// Explicitly flush this rank's aggregation buffers, injecting every
    /// buffered batch immediately. Returns the number of batches flushed
    /// (0 when aggregation is disabled or nothing was buffered). Barriers
    /// and runtime teardown flush implicitly; call this to bound latency
    /// of fire-and-forget fine-grained traffic between synchronizations.
    pub fn agg_flush(&self) -> usize {
        self.ctx.agg_flush_explicit()
    }

    /// Barrier over all ranks (drives progress while waiting).
    pub fn barrier(&self) {
        let team = self.world_team();
        self.barrier_team(&team);
    }

    /// Barrier over `team`.
    ///
    /// Entering a barrier is a synchronization point: any operations this
    /// rank buffered in the aggregation layer are flushed first, so peers
    /// observing the barrier's completion also observe this rank's writes.
    pub fn barrier_team(&self, team: &Team) {
        self.ctx.agg_flush_explicit();
        let ctx = Rc::clone(&self.ctx);
        self.ctx.world.barrier(team, &mut || {
            ctx.progress_quantum();
        });
    }

    /// Asynchronous barrier over all ranks (`upcxx::barrier_async`):
    /// returns a future readied — during a later progress call — once every
    /// rank has entered the same barrier epoch. Unlike [`barrier`], the
    /// caller keeps running and may overlap work with the synchronization.
    pub fn barrier_async(&self) -> Future<()> {
        let team = self.world_team();
        self.barrier_async_team(&team)
    }

    /// Asynchronous barrier over `team`.
    pub fn barrier_async_team(&self, team: &Team) -> Future<()> {
        let idx = team
            .rank_of(self.ctx.me)
            .expect("barrier_async caller must be a team member");
        let epoch = team.async_arrive(idx);
        let team2 = team.clone();
        // Completion is inherently asynchronous (it depends on other
        // ranks), so it always routes through the progress engine —
        // matching UPC++, where collectives never complete eagerly.
        let cell = crate::future::cell::new_cell_with_value(1, ());
        let c2 = Rc::clone(&cell);
        self.ctx.push_deferred(crate::ctx::Deferred::OnCheck(
            Box::new(move || team2.async_epoch_complete(epoch)),
            Box::new(move || c2.fulfill(1)),
        ));
        Future::from_cell(cell)
    }

    /// Collectively split the world team by `color`, ordering members by
    /// `(key, rank)` — `upcxx::team::split`.
    pub fn split(&self, color: u64, key: u64) -> Team {
        let team = self.world_team();
        self.split_team(&team, color, key)
    }

    /// Collectively split `team` by `color`.
    pub fn split_team(&self, team: &Team, color: u64, key: u64) -> Team {
        let ctx = Rc::clone(&self.ctx);
        self.ctx
            .world
            .split_team(team, self.ctx.me, color, key, &mut || {
                ctx.progress_quantum();
            })
    }

    /// All-gather of one `u64` per member of `team`, indexed by team rank.
    pub fn gather_all_team(&self, team: &Team, v: u64) -> Vec<u64> {
        let ctx = Rc::clone(&self.ctx);
        self.ctx.world.gather_all(team, self.ctx.me, v, &mut || {
            ctx.progress_quantum();
        })
    }

    /// All-gather of one `u64` per rank, indexed by rank.
    pub fn gather_all(&self, v: u64) -> Vec<u64> {
        let team = self.world_team();
        self.gather_all_team(&team, v)
    }

    /// Broadcast over `team` from team-member index `root`.
    pub fn broadcast_team<T: Clone + Send + 'static>(&self, team: &Team, val: T, root: usize) -> T {
        let ctx = Rc::clone(&self.ctx);
        let me_idx = team
            .rank_of(self.ctx.me)
            .expect("broadcast caller must be a team member");
        let root_val = (me_idx == root).then_some(val);
        self.ctx.world.broadcast(team, root_val, &mut || {
            ctx.progress_quantum();
        })
    }

    /// Team-scoped sum reduction.
    pub fn allreduce_sum_u64_team(&self, team: &Team, v: u64) -> u64 {
        let ctx = Rc::clone(&self.ctx);
        self.ctx
            .world
            .allreduce(team, self.ctx.me, v, &|a, b| a.wrapping_add(b), &mut || {
                ctx.progress_quantum();
            })
    }

    /// Broadcast `val` from `root` to every rank (synchronous collective).
    pub fn broadcast<T: Clone + Send + 'static>(&self, val: T, root: usize) -> T {
        let team = self.world_team();
        let ctx = Rc::clone(&self.ctx);
        let root_val = (self.rank_me() == root).then_some(val);
        self.ctx.world.broadcast(&team, root_val, &mut || {
            ctx.progress_quantum();
        })
    }

    fn allreduce_bits(&self, bits: u64, f: &dyn Fn(u64, u64) -> u64) -> u64 {
        let team = self.world_team();
        let ctx = Rc::clone(&self.ctx);
        self.ctx
            .world
            .allreduce(&team, self.ctx.me, bits, f, &mut || {
                ctx.progress_quantum();
            })
    }

    /// Sum of `v` across all ranks.
    pub fn allreduce_sum_u64(&self, v: u64) -> u64 {
        self.allreduce_bits(v, &|a, b| a.wrapping_add(b))
    }

    /// Maximum of `v` across all ranks.
    pub fn allreduce_max_u64(&self, v: u64) -> u64 {
        self.allreduce_bits(v, &|a, b| a.max(b))
    }

    /// Minimum of `v` across all ranks.
    pub fn allreduce_min_u64(&self, v: u64) -> u64 {
        self.allreduce_bits(v, &|a, b| a.min(b))
    }

    /// Sum of `v` across all ranks (floating point).
    pub fn allreduce_sum_f64(&self, v: f64) -> f64 {
        f64::from_bits(self.allreduce_bits(v.to_bits(), &|a, b| {
            (f64::from_bits(a) + f64::from_bits(b)).to_bits()
        }))
    }

    /// Drain all globally outstanding work, then barrier. Called
    /// automatically at the end of `launch` so fire-and-forget traffic is
    /// never lost.
    ///
    /// Termination detection: a round is *clean* when this rank is locally
    /// idle, the global sent/executed and injected/delivered counters agree,
    /// and every rank reports the same. Two consecutive clean rounds
    /// (separated by the allreduce, which acts as a barrier) rule out
    /// in-flight work racing the counter samples.
    pub(crate) fn quiesce(&self) {
        const MAX_ROUNDS: usize = 1_000_000;
        let mut clean_rounds = 0;
        // Flush aggregation buffers up front; the drain loop below also
        // flushes (buffered batches count as progress work), so this is
        // belt-and-braces for the first round.
        self.ctx.agg_flush_explicit();
        for _ in 0..MAX_ROUNDS {
            while self.ctx.progress_quantum() > 0 {}
            let busy = u64::from(!self.ctx.locally_idle() || !self.ctx.world.substrate_quiet());
            if self.allreduce_sum_u64(busy) == 0 {
                clean_rounds += 1;
                if clean_rounds >= 2 {
                    self.barrier();
                    return;
                }
            } else {
                clean_rounds = 0;
            }
        }
        panic!("quiesce: outstanding work failed to drain (deadlocked notification?)");
    }

    // ---- shared-memory management ---------------------------------------------

    /// Allocate one `T` in this rank's shared segment, initialized to `v`
    /// (the `upcxx::new_<T>(v)` idiom).
    pub fn new_<T: SegValue>(&self, v: T) -> GlobalPtr<T> {
        let p = self.new_array::<T>(1);
        self.ctx
            .world
            .segment(p.rank())
            .write_scalar(p.offset(), T::SIZE, v.to_bits());
        p
    }

    /// Allocate `n` zero-initialized `T`s in this rank's shared segment.
    pub fn new_array<T: SegValue>(&self, n: usize) -> GlobalPtr<T> {
        let bytes = n * T::SIZE;
        let off = self
            .ctx
            .world
            .seg_alloc(self.ctx.me)
            .alloc(bytes, T::SIZE.max(8))
            .unwrap_or_else(|e| panic!("shared allocation of {bytes} bytes failed: {e}"));
        // Allocator may return recycled memory; fresh allocations are
        // expected zeroed (matching `upcxx::new_array`'s value-init of
        // scalars in this reproduction).
        let seg = self.ctx.world.segment(self.ctx.me);
        for i in 0..bytes.div_ceil(8) {
            seg.write_u64(off + i * 8, 0);
        }
        GlobalPtr::from_parts(self.ctx.me, off)
    }

    /// Free a shared object allocated by [`new_`](Self::new_) or
    /// [`new_array`](Self::new_array). May be called by any rank that can
    /// address the owner's segment.
    pub fn delete_<T: SegValue>(&self, p: GlobalPtr<T>) {
        assert!(!p.is_null(), "delete_ of null global pointer");
        self.ctx.world.seg_alloc(p.rank()).dealloc(p.offset());
    }

    // ---- locality -----------------------------------------------------------

    /// Whether `p` can be downcast to a direct reference from this rank.
    /// Compile-time-true on the SMP conduit under 2021.3.6 semantics (the
    /// constexpr `is_local` optimization).
    #[inline]
    pub fn is_local<T: SegValue>(&self, p: GlobalPtr<T>) -> bool {
        self.ctx.addressable(p.rank())
    }

    /// Downcast a local global pointer to a direct reference (the
    /// `global_ptr::local()` idiom). Panics if `p` is not local.
    #[inline]
    pub fn local<T: SegValue>(&self, p: GlobalPtr<T>) -> LocalRef<'_, T> {
        assert!(
            self.is_local(p),
            "local() downcast of non-local pointer {p:?}"
        );
        LocalRef {
            seg: self.ctx.world.segment(p.rank()),
            off: p.offset(),
            _marker: PhantomData,
        }
    }

    /// Direct view of `len` 64-bit words behind a local pointer, for
    /// manually-localized bulk access (the raw-GUPS table).
    pub fn local_slice_u64(&self, p: GlobalPtr<u64>, len: usize) -> &[AtomicU64] {
        assert!(
            self.is_local(p),
            "local_slice_u64 of non-local pointer {p:?}"
        );
        self.ctx
            .world
            .segment(p.rank())
            .atomic_slice_u64(p.offset(), len)
    }

    // ---- misc ----------------------------------------------------------------

    /// A ready value-less future (`upcxx::make_future()`), using the shared
    /// pre-allocated cell when the version elides the allocation.
    pub fn make_future(&self) -> Future<()> {
        Future::ready_unit()
    }

    /// Snapshot of this rank's runtime statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.ctx.stats.snapshot()
    }

    /// Reset this rank's runtime statistics to zero.
    pub fn reset_stats(&self) {
        self.ctx.stats.reset();
    }

    /// Snapshot of the shared simulated-network counters — unlike
    /// [`stats`](Self::stats) these are world-global, not per-rank. Includes
    /// the chaos-mode reliability layer: `retries`, `drops_injected`,
    /// `dup_suppressed`, and the largest retransmission backoff applied.
    pub fn net_stats(&self) -> gasnex::NetStats {
        self.ctx.world.net().stats()
    }

    // ---- runtime introspection ------------------------------------------------

    /// Capture a live snapshot of everything pending right now: this
    /// rank's open operation spans (with their lifecycle phase) and
    /// aggregation buckets, plus the world-global in-flight conduit
    /// messages and notification words. Render with
    /// [`render_text`](crate::introspect::Snapshot::render_text) /
    /// [`render_json`](crate::introspect::Snapshot::render_json) — both
    /// deterministic, so a quiesced snapshot is byte-identical across
    /// same-seed runs.
    pub fn snapshot(&self) -> crate::introspect::Snapshot {
        crate::introspect::Snapshot::capture(&self.ctx)
    }

    /// The current wait-for graph (parked notification waiters plus
    /// in-flight wire deliveries) — the structure the stall watchdog walks.
    pub fn wait_graph(&self) -> Vec<crate::introspect::WaitEdge> {
        crate::introspect::wait_graph(&self.ctx.world)
    }

    // ---- operation-lifecycle tracing ------------------------------------------

    /// Enable or disable operation-lifecycle tracing on this rank.
    ///
    /// While enabled, every RMA put/get, atomic, RPC, and `when_all`
    /// conjoin records lifecycle events (initiation, network injection,
    /// completion notification tagged eager vs. deferred, event wakeups,
    /// progress drains) into a per-rank fixed-capacity ring buffer, and
    /// completion latencies feed the (op kind × completion path) histograms
    /// behind [`latency_report`](Self::latency_report). Timestamps come from
    /// the simulated network's clock, so virtual-clock chaos traces are
    /// bit-replayable.
    ///
    /// Also flips the shared network-level event sink on the first enable
    /// (wire inject/drop/retry/deliver events, drained world-globally via
    /// [`take_net_trace`](Self::take_net_trace)). Disabled-mode overhead is
    /// one predictably-taken branch per instrumentation site.
    pub fn trace_enabled(&self, on: bool) {
        self.ctx.trace_on.set(on);
        // The net sink is world-global: enable is sticky across ranks, and
        // disable only happens when *this* rank turns tracing off — other
        // ranks still tracing will simply re-enable on their next call.
        self.ctx.world.net().set_tracing(on);
    }

    /// Whether operation-lifecycle tracing is currently enabled on this rank.
    pub fn is_tracing(&self) -> bool {
        self.ctx.trace_on.get()
    }

    /// Drain this rank's recorded trace events (ring-buffer contents plus
    /// the count of events dropped to the ring's displacement policy).
    /// Recording continues if tracing is still enabled.
    pub fn take_trace(&self) -> crate::trace::RankTrace {
        self.ctx.tracer.borrow_mut().take()
    }

    /// Drain the world-global network event sink (wire-level inject, chaos
    /// drop, retry, deliver, duplicate-discard, and signal events). Shared
    /// by all ranks — drain from one rank, typically after a barrier.
    pub fn take_net_trace(&self) -> Vec<gasnex::NetTraceEvent> {
        self.ctx.world.net().take_trace()
    }

    /// Snapshot of this rank's completion-latency histograms, keyed by
    /// (op kind × completion path), with `p50`/`p99`/`max` accessors and a
    /// cross-rank [`merge`](crate::trace::Histograms::merge).
    pub fn latency_report(&self) -> crate::trace::Histograms {
        self.ctx.tracer.borrow().histograms()
    }

    // ---- cross-rank causal tracing --------------------------------------------

    /// Collectively assemble the cross-rank causal timeline (PR 9).
    ///
    /// Every rank must call this (it contains barriers). Each rank drains
    /// its span trace and deposits it with the world; after a barrier,
    /// rank 0 collects the deposits plus the world-global wire trace into
    /// a [`crate::trace::TraceBundle`] and runs [`crate::trace::assemble`]
    /// over it — merging the per-rank rings by Lamport stamp, building the
    /// happens-before DAG, checking for causality violations, and
    /// profiling the distributed critical path. Returns
    /// `Some((bundle, assembly))` on rank 0, `None` elsewhere.
    ///
    /// Rank 0's `hb_edges` / `causal_violations` counters and the
    /// `causal_chain_depth` high-water gauge are updated from the result.
    pub fn take_causal(&self) -> Option<(crate::trace::TraceBundle, crate::trace::CausalAssembly)> {
        let trace = self.ctx.tracer.borrow_mut().take();
        self.ctx.world.deposit(self.ctx.me.0, Box::new(trace));
        self.barrier();
        if self.ctx.me.0 != 0 {
            // Hold everyone until rank 0 has drained the deposit bin, so a
            // subsequent take_causal cannot interleave deposits.
            self.barrier();
            return None;
        }
        let mut bundle = crate::trace::TraceBundle::default();
        for (_, item) in self.ctx.world.drain_deposits() {
            if let Ok(rt) = item.downcast::<crate::trace::RankTrace>() {
                bundle.ranks.push(*rt);
            }
        }
        bundle.net = self.ctx.world.net().take_trace();
        let asm = crate::trace::assemble(&bundle);
        let s = &self.ctx.stats;
        add(&s.hb_edges, asm.hb_edges());
        add(&s.causal_violations, asm.violations);
        raise(&s.causal_chain_depth, asm.chain_depth);
        self.barrier();
        Some((bundle, asm))
    }

    /// Collective convenience over [`take_causal`](Self::take_causal):
    /// returns the deterministic text rendering of the assembled causal
    /// timeline on rank 0, `None` elsewhere.
    pub fn causal_report(&self) -> Option<String> {
        self.take_causal().map(|(_, asm)| asm.render_text())
    }

    // ---- metric time-series ---------------------------------------------------

    /// Enable or disable fixed-interval metric sampling on this rank.
    ///
    /// While enabled, the end of each progress quantum records — at most
    /// once per sampling interval of the simulated clock — a snapshot of
    /// every registered metric (the `per_rank_stats!` counters, live
    /// queue-depth gauges, and the shared network counters) into a bounded
    /// ring. Under [`gasnex::ClockMode::Virtual`] the series is
    /// deterministic for a single-threaded drive. Disabled-mode overhead
    /// is one predictably-taken branch per quantum.
    pub fn metrics_enabled(&self, on: bool) {
        self.ctx.metrics_on.set(on);
    }

    /// Whether metric sampling is currently enabled on this rank.
    pub fn is_metrics_enabled(&self) -> bool {
        self.ctx.metrics_on.get()
    }

    /// Replace the sampler configuration (interval, ring capacity). Drops
    /// any buffered samples.
    pub fn metrics_config(&self, cfg: crate::metrics::MetricsConfig) {
        self.ctx
            .metrics
            .replace(crate::metrics::MetricSeries::new(cfg));
    }

    /// Drain this rank's sampled metric series, recording one final
    /// unconditional sample first so the end-of-run state is always
    /// present. Sampling continues if still enabled.
    pub fn take_metrics(&self) -> crate::metrics::RankSeries {
        let now = self.ctx.trace_now_ns();
        let mut m = self.ctx.metrics.borrow_mut();
        let interval_ns = m.interval_ns();
        m.force_sample(now, || crate::metrics::collect_values(&self.ctx));
        let (samples, dropped) = m.take();
        crate::metrics::RankSeries {
            rank: self.ctx.me.0,
            interval_ns,
            samples,
            dropped,
        }
    }

    /// Reset every observability surface at once: the per-rank stats
    /// counters ([`reset_stats`](Self::reset_stats) semantics, with the
    /// pending-notifications high-water gauge re-primed to the *current*
    /// pending level rather than zero — gauges are levels, not counts),
    /// the completion-latency histograms, the shared network counters
    /// (re-baselined; the raw quiescence counters are untouched), and any
    /// buffered metric samples.
    pub fn reset_observability(&self) {
        self.ctx.stats.reset();
        self.ctx.reprime_pending_highwater();
        self.ctx.tracer.borrow_mut().reset_histograms();
        self.ctx.world.net().reset_stats();
        let _ = self.ctx.metrics.borrow_mut().take();
    }
}

/// Free-function conveniences mirroring the UPC++ global API; usable from
/// anywhere inside a `launch` region on the calling rank's context —
/// including from `then` continuations and RPC bodies, where no borrowed
/// [`Upcr`] handle can be captured.
pub mod api {
    use super::Upcr;
    use crate::completion::CxValue;
    use crate::ctx::with_ctx;
    use crate::future::Future;
    use crate::global_ptr::{GlobalPtr, SegValue};

    /// Build an ephemeral handle for the calling rank.
    fn current() -> Upcr {
        Upcr {
            ctx: crate::ctx::clone_current(),
        }
    }

    /// The calling rank's index.
    pub fn rank_me() -> usize {
        with_ctx(|c| c.me.idx())
    }

    /// Total number of ranks.
    pub fn rank_n() -> usize {
        with_ctx(|c| c.world.ranks())
    }

    /// One user-level progress quantum.
    pub fn progress() {
        with_ctx(|c| {
            c.progress_quantum();
        });
    }

    /// Blocking signal wait on the calling rank's context
    /// ([`Upcr::wait_signal`]) — usable inside continuation callbacks and
    /// RPC bodies, where no borrowed handle is available.
    pub fn wait_signal(word: usize, mask: u64) -> u64 {
        current().wait_signal(word, mask)
    }

    /// Asynchronous scalar put on the calling rank's context
    /// ([`Upcr::rput`]).
    pub fn rput<T: SegValue>(val: T, dst: GlobalPtr<T>) -> Future<()> {
        current().rput(val, dst)
    }

    /// Asynchronous scalar get on the calling rank's context
    /// ([`Upcr::rget`]).
    pub fn rget<T: SegValue + CxValue>(src: GlobalPtr<T>) -> Future<T> {
        current().rget(src)
    }

    /// Scalar put with a continuation callback on the calling rank's
    /// context — shorthand for `rput_with(val, dst,
    /// operation_cx::as_callback(f))`, usable inside callbacks and RPC
    /// bodies where no borrowed handle is available. The callback is
    /// enqueued, never run inline; an enqueue made from inside a drain is
    /// delivered by that same drain (see
    /// [`crate::completion::operation_cx::as_callback`]).
    pub fn rput_with_callback<T: SegValue, F: FnOnce(()) + Send + 'static>(
        val: T,
        dst: GlobalPtr<T>,
        f: F,
    ) {
        current().rput_with(val, dst, crate::completion::operation_cx::as_callback(f));
    }

    /// RPC from the calling rank's context ([`Upcr::rpc`]).
    pub fn rpc<F, R>(target: gasnex::Rank, f: F) -> Future<R>
    where
        F: FnOnce() -> R + Send + 'static,
        R: CxValue,
    {
        current().rpc(target, f)
    }

    /// Direct load through a local (directly addressable) global pointer —
    /// the downcast-and-read idiom, usable inside RPC bodies where no
    /// borrowed handle is available. Panics if `p` is not local.
    pub fn local_load<T: SegValue>(p: GlobalPtr<T>) -> T {
        with_ctx(|c| {
            assert!(
                c.addressable(p.rank()),
                "local_load of non-local pointer {p:?}"
            );
            T::from_bits(c.world.segment(p.rank()).read_scalar(p.offset(), T::SIZE))
        })
    }

    /// Direct store through a local global pointer (see [`local_load`]).
    pub fn local_store<T: SegValue>(p: GlobalPtr<T>, v: T) {
        with_ctx(|c| {
            assert!(
                c.addressable(p.rank()),
                "local_store of non-local pointer {p:?}"
            );
            c.world
                .segment(p.rank())
                .write_scalar(p.offset(), T::SIZE, v.to_bits());
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_compose() {
        let c = RuntimeConfig::udp(8, 4)
            .with_version(LibVersion::V2021_3_0)
            .with_segment_size(1 << 14)
            .with_net(NetConfig {
                latency_ns: 9,
                jitter_ns: 1,
                ..NetConfig::default()
            });
        assert_eq!(c.version, LibVersion::V2021_3_0);
        assert_eq!(c.gasnex.ranks, 8);
        assert_eq!(c.gasnex.ranks_per_node, 4);
        assert_eq!(c.gasnex.segment_size, 1 << 14);
        assert_eq!(c.gasnex.net.latency_ns, 9);
        assert!(matches!(
            RuntimeConfig::smp(2).gasnex.conduit,
            gasnex::ConduitKind::Smp
        ));
        assert!(matches!(
            RuntimeConfig::mpi(2, 2).gasnex.conduit,
            gasnex::ConduitKind::Mpi
        ));
    }

    #[test]
    fn default_version_is_eager() {
        assert_eq!(RuntimeConfig::smp(1).version, LibVersion::V2021_3_6Eager);
    }

    #[test]
    fn launch_installs_identity_and_free_functions() {
        let out = launch(RuntimeConfig::smp(3).with_segment_size(1 << 16), |u| {
            assert_eq!(api::rank_me(), u.rank_me());
            assert_eq!(api::rank_n(), 3);
            api::progress();
            (u.rank_me(), u.rank_n(), u.version())
        });
        assert_eq!(out.len(), 3);
        for (r, (me, n, v)) in out.into_iter().enumerate() {
            assert_eq!(me, r);
            assert_eq!(n, 3);
            assert_eq!(v, LibVersion::V2021_3_6Eager);
        }
    }

    #[test]
    fn local_load_store_free_functions() {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 16), |u| {
            let p = u.new_::<u64>(0);
            api::local_store(p, 31);
            assert_eq!(api::local_load::<u64>(p), 31);
        });
    }
}
