//! Typed reductions: the `upcxx::reduce_one` / `reduce_all` family.
//!
//! Scalar reductions ride the substrate's exchange buffers; vector
//! reductions are built *on top of the public RMA API* (bulk puts into the
//! root's shared segment, reduce, broadcast back) — the same structure
//! RMA-based collective implementations use, which means they exercise the
//! eager/deferred completion machinery like any application traffic.

use crate::global_ptr::SegValue;
use crate::runtime::Upcr;
use gasnex::Team;

/// The reduction operators of `upcxx::op_fast_*`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Sum.
    Plus,
    /// Product.
    Mult,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise AND (integer types only).
    BitAnd,
    /// Bitwise OR (integer types only).
    BitOr,
    /// Bitwise XOR (integer types only).
    BitXor,
}

/// Values reducible with [`ReduceOp`].
pub trait ReduceVal: SegValue + PartialEq + std::fmt::Debug {
    /// Apply `op` to two values.
    fn apply(op: ReduceOp, a: Self, b: Self) -> Self;
    /// The identity element of `op`.
    fn identity(op: ReduceOp) -> Self;
}

macro_rules! impl_reduceval_int {
    ($($t:ty),*) => {$(
        impl ReduceVal for $t {
            fn apply(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Plus => a.wrapping_add(b),
                    ReduceOp::Mult => a.wrapping_mul(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::BitAnd => a & b,
                    ReduceOp::BitOr => a | b,
                    ReduceOp::BitXor => a ^ b,
                }
            }
            fn identity(op: ReduceOp) -> Self {
                match op {
                    ReduceOp::Plus | ReduceOp::BitOr | ReduceOp::BitXor => 0,
                    ReduceOp::Mult => 1,
                    ReduceOp::Min => <$t>::MAX,
                    ReduceOp::Max => <$t>::MIN,
                    ReduceOp::BitAnd => !0,
                }
            }
        }
    )*};
}
impl_reduceval_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_reduceval_float {
    ($($t:ty),*) => {$(
        impl ReduceVal for $t {
            fn apply(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Plus => a + b,
                    ReduceOp::Mult => a * b,
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                    _ => panic!("bitwise reduction on a floating-point type"),
                }
            }
            fn identity(op: ReduceOp) -> Self {
                match op {
                    ReduceOp::Plus => 0.0,
                    ReduceOp::Mult => 1.0,
                    ReduceOp::Min => <$t>::INFINITY,
                    ReduceOp::Max => <$t>::NEG_INFINITY,
                    _ => panic!("bitwise reduction on a floating-point type"),
                }
            }
        }
    )*};
}
impl_reduceval_float!(f32, f64);

impl Upcr {
    /// Reduce one scalar per rank with `op`; every rank receives the result
    /// (`upcxx::reduce_all`).
    ///
    /// ```
    /// use upcr::{launch, ReduceOp, RuntimeConfig};
    /// launch(RuntimeConfig::smp(4), |u| {
    ///     let max = u.reduce_all(u.rank_me() as u64, ReduceOp::Max);
    ///     assert_eq!(max, 3);
    /// });
    /// ```
    pub fn reduce_all<T: ReduceVal>(&self, v: T, op: ReduceOp) -> T {
        let team = self.world_team();
        self.reduce_all_team(&team, v, op)
    }

    /// Team-scoped scalar reduce-to-all.
    pub fn reduce_all_team<T: ReduceVal>(&self, team: &Team, v: T, op: ReduceOp) -> T {
        let contributions = self.gather_all_team(team, v.to_bits());
        let mut acc = T::identity(op);
        for bits in contributions {
            acc = T::apply(op, acc, T::from_bits(bits));
        }
        acc
    }

    /// Reduce one scalar per rank with `op`; only team-member `root`
    /// receives a meaningful result (`upcxx::reduce_one`). Other ranks get
    /// the identity element.
    pub fn reduce_one<T: ReduceVal>(&self, v: T, op: ReduceOp, root: usize) -> T {
        let team = self.world_team();
        let all = self.reduce_all_team(&team, v, op);
        if team.rank_of(self.me()) == Some(root) {
            all
        } else {
            T::identity(op)
        }
    }

    /// Element-wise vector reduction: every rank contributes `vals`
    /// (identical lengths) and receives the element-wise reduction.
    ///
    /// Implemented over the public RMA API: each rank bulk-puts its
    /// contribution into the root's shared segment, the root reduces, and
    /// the result is broadcast back.
    pub fn reduce_all_vec<T: ReduceVal>(&self, vals: &[T], op: ReduceOp) -> Vec<T> {
        let team = self.world_team();
        self.reduce_all_vec_team(&team, vals, op)
    }

    /// Team-scoped element-wise vector reduction.
    pub fn reduce_all_vec_team<T: ReduceVal>(
        &self,
        team: &Team,
        vals: &[T],
        op: ReduceOp,
    ) -> Vec<T> {
        let me_idx = team
            .rank_of(self.me())
            .expect("reduction caller must be a team member");
        let len = vals.len();
        // Length agreement check (cheap collective sanity).
        let max_len = {
            let lens = self.gather_all_team(team, len as u64);
            assert!(
                lens.iter().all(|&l| l == len as u64),
                "reduce_all_vec: ranks disagree on vector length"
            );
            len
        };
        if max_len == 0 {
            self.barrier_team(team);
            return Vec::new();
        }
        // Root allocates the gather area and shares its pointer.
        let root_buf = if me_idx == 0 {
            self.new_array::<T>(len * team.size())
        } else {
            crate::GlobalPtr::null()
        };
        let root_buf = self.broadcast_team(team, root_buf.encode(), 0);
        let root_buf = crate::GlobalPtr::<T>::decode(root_buf);
        // Everyone bulk-puts its contribution into its slot.
        self.rput_slice(vals, root_buf.add(me_idx * len)).wait();
        self.barrier_team(team);
        // Root reduces element-wise and broadcasts the result.
        let result = if me_idx == 0 {
            let all = self.rget_vec(root_buf, len * team.size()).wait();
            let mut out = vec![T::identity(op); len];
            for (i, v) in all.into_iter().enumerate() {
                let e = i % len;
                out[e] = T::apply(op, out[e], v);
            }
            Some(out)
        } else {
            None
        };
        let out = {
            let val = result.unwrap_or_default();
            self.broadcast_team(team, val, 0)
        };
        self.barrier_team(team);
        if me_idx == 0 {
            self.delete_(root_buf);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_are_identities() {
        for op in [
            ReduceOp::Plus,
            ReduceOp::Mult,
            ReduceOp::Min,
            ReduceOp::Max,
            ReduceOp::BitAnd,
            ReduceOp::BitOr,
            ReduceOp::BitXor,
        ] {
            for v in [0u64, 1, 42, u64::MAX] {
                assert_eq!(
                    u64::apply(op, u64::identity(op), v),
                    v,
                    "{op:?} identity on {v}"
                );
            }
        }
        for op in [ReduceOp::Plus, ReduceOp::Mult, ReduceOp::Min, ReduceOp::Max] {
            for v in [0.0f64, 1.5, -3.25] {
                assert_eq!(
                    f64::apply(op, f64::identity(op), v),
                    v,
                    "{op:?} identity on {v}"
                );
            }
        }
    }

    #[test]
    fn signed_min_max() {
        assert_eq!(i64::apply(ReduceOp::Min, -5, 3), -5);
        assert_eq!(i64::apply(ReduceOp::Max, -5, 3), 3);
        assert_eq!(i64::identity(ReduceOp::Min), i64::MAX);
    }

    #[test]
    #[should_panic(expected = "floating-point")]
    fn bitwise_on_float_panics() {
        let _ = f64::apply(ReduceOp::BitXor, 1.0, 2.0);
    }

    #[test]
    fn wrapping_semantics() {
        assert_eq!(u8::apply(ReduceOp::Plus, 200, 100), 44);
        assert_eq!(
            u8::apply(ReduceOp::Mult, 100, 100),
            (100u8).wrapping_mul(100)
        );
    }
}
