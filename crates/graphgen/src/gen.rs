//! Seeded synthetic graph generators.
//!
//! Each generator is deterministic in its parameters and seed, and is
//! designed to reproduce a *locality profile* — the fraction of edges whose
//! endpoints land on the same rank / same node under a block partition —
//! matching one of the paper's graph-matching inputs (see
//! [`presets`](crate::presets)).

use crate::graph::Graph;
use crate::rng::SeededRng;

/// 3D mesh with 6-point stencil connectivity, indexed lexicographically —
/// extremely high locality under a block partition (the `channel` profile).
pub fn mesh3d(nx: usize, ny: usize, nz: usize) -> Graph {
    let n = nx * ny * nz;
    assert!(n > 0, "mesh must be non-empty");
    let id = |x: usize, y: usize, z: usize| (x + nx * (y + ny * z)) as u32;
    let mut edges = Vec::with_capacity(3 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((id(x, y, z), id(x + 1, y, z)));
                }
                if y + 1 < ny {
                    edges.push((id(x, y, z), id(x, y + 1, z)));
                }
                if z + 1 < nz {
                    edges.push((id(x, y, z), id(x, y, z + 1)));
                }
            }
        }
    }
    Graph::from_edges(n, &edges, None)
}

/// 2D mesh with 4-point connectivity where a fraction of edges is randomly
/// removed and a small number of medium-range diagonals added — moderately
/// irregular with good locality (the `venturi` profile).
pub fn mesh2d_irregular(nx: usize, ny: usize, drop_prob: f64, seed: u64) -> Graph {
    let n = nx * ny;
    assert!(n > 0);
    let mut rng = SeededRng::seed_from_u64(seed);
    let id = |x: usize, y: usize| (x + nx * y) as u32;
    let mut edges = Vec::with_capacity(2 * n);
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx && rng.next_f64() >= drop_prob {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < ny && rng.next_f64() >= drop_prob {
                edges.push((id(x, y), id(x, y + 1)));
            }
            // Sparse medium-range diagonal, reaching a few rows away.
            if rng.next_f64() < 0.05 {
                let dx = rng.below(8);
                let dy = 1 + rng.below(3);
                if x + dx < nx && y + dy < ny {
                    edges.push((id(x, y), id(x + dx, y + dy)));
                }
            }
        }
    }
    Graph::from_edges(n, &edges, None)
}

/// Points on a unit square connected within a cutoff radius, vertex ids
/// assigned in row-major spatial order, plus `extra_per_100` random
/// long-range edges per 100 cutoff edges — the graph-matching application's
/// own `--n/--p` generator (the `random` input uses `p = 15`).
pub fn geometric(n: usize, neighbors_target: f64, extra_per_100: usize, seed: u64) -> Graph {
    assert!(n > 1);
    let mut rng = SeededRng::seed_from_u64(seed);
    // Choose the radius so the expected degree is about `neighbors_target`:
    // E[deg] = n * pi * r^2.
    let r = (neighbors_target / (std::f64::consts::PI * n as f64)).sqrt();
    // Spatial binning: grid cells of side >= r; vertex ids follow cell
    // order so nearby points get nearby ids (locality under block
    // partitioning, like the application's input ordering).
    let cells = ((1.0 / r).floor() as usize).clamp(1, 4096);
    let cell_of = |x: f64, y: f64| {
        let cx = ((x * cells as f64) as usize).min(cells - 1);
        let cy = ((y * cells as f64) as usize).min(cells - 1);
        (cx, cy)
    };
    let mut pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();
    // Sort points into row-major cell order for id locality.
    pts.sort_by(|a, b| {
        let ca = cell_of(a.0, a.1);
        let cb = cell_of(b.0, b.1);
        (ca.1, ca.0, a.1.to_bits(), a.0.to_bits()).cmp(&(cb.1, cb.0, b.1.to_bits(), b.0.to_bits()))
    });
    // Bin points.
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        bins[cy * cells + cx].push(i as u32);
    }
    let mut edges = Vec::new();
    let r2 = r * r;
    for cy in 0..cells {
        for cx in 0..cells {
            for &i in &bins[cy * cells + cx] {
                let (xi, yi) = pts[i as usize];
                // Scan this cell and forward neighbor cells.
                for (dx, dy) in [(0i64, 0i64), (1, 0), (-1, 1), (0, 1), (1, 1)] {
                    let nxc = cx as i64 + dx;
                    let nyc = cy as i64 + dy;
                    if nxc < 0 || nyc < 0 || nxc >= cells as i64 || nyc >= cells as i64 {
                        continue;
                    }
                    for &j in &bins[nyc as usize * cells + nxc as usize] {
                        if j <= i && dx == 0 && dy == 0 {
                            continue;
                        }
                        let (xj, yj) = pts[j as usize];
                        let d2 = (xi - xj) * (xi - xj) + (yi - yj) * (yi - yj);
                        if d2 <= r2 {
                            edges.push((i, j));
                        }
                    }
                }
            }
        }
    }
    // Long-range edges: `extra_per_100` per 100 cutoff edges, uniformly
    // random endpoints (the application's "not close together" edges).
    let extra = edges.len() * extra_per_100 / 100;
    for _ in 0..extra {
        let a = rng.below(n) as u32;
        let b = rng.below(n) as u32;
        if a != b {
            edges.push((a, b));
        }
    }
    Graph::from_edges(n, &edges, None)
}

/// k-nearest-neighbour graph over random points in spatial id order — a
/// planar-ish near-triangulation (the `delaunay` profile).
pub fn knn(n: usize, k: usize, seed: u64) -> Graph {
    assert!(n > k && k >= 1);
    let mut rng = SeededRng::seed_from_u64(seed);
    let cells = ((n as f64 / 4.0).sqrt() as usize).clamp(1, 2048);
    let cell_of = |x: f64, y: f64| {
        let cx = ((x * cells as f64) as usize).min(cells - 1);
        let cy = ((y * cells as f64) as usize).min(cells - 1);
        (cx, cy)
    };
    let mut pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();
    pts.sort_by(|a, b| {
        let ca = cell_of(a.0, a.1);
        let cb = cell_of(b.0, b.1);
        (ca.1, ca.0, a.1.to_bits(), a.0.to_bits()).cmp(&(cb.1, cb.0, b.1.to_bits(), b.0.to_bits()))
    });
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        bins[cy * cells + cx].push(i as u32);
    }
    let mut edges = Vec::with_capacity(n * k);
    let mut cand: Vec<(f64, u32)> = Vec::new();
    for (i, &(xi, yi)) in pts.iter().enumerate() {
        cand.clear();
        let (cx, cy) = cell_of(xi, yi);
        // Expand rings of cells until we have enough candidates.
        let mut ring = 1i64;
        loop {
            cand.clear();
            for dy in -ring..=ring {
                for dx in -ring..=ring {
                    let nxc = cx as i64 + dx;
                    let nyc = cy as i64 + dy;
                    if nxc < 0 || nyc < 0 || nxc >= cells as i64 || nyc >= cells as i64 {
                        continue;
                    }
                    for &j in &bins[nyc as usize * cells + nxc as usize] {
                        if j as usize == i {
                            continue;
                        }
                        let (xj, yj) = pts[j as usize];
                        let d2 = (xi - xj) * (xi - xj) + (yi - yj) * (yi - yj);
                        cand.push((d2, j));
                    }
                }
            }
            if cand.len() >= k || ring as usize >= cells {
                break;
            }
            ring += 1;
        }
        cand.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &(_, j) in cand.iter().take(k) {
            edges.push((i as u32, j));
        }
    }
    Graph::from_edges(n, &edges, None)
}

/// Barabási–Albert preferential attachment with `m` edges per new vertex,
/// followed by a uniform random relabeling of all vertices — a power-law
/// graph with essentially no id locality (the `youtube` profile).
pub fn powerlaw(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n > m && m >= 1);
    let mut rng = SeededRng::seed_from_u64(seed);
    // Endpoint pool: each edge endpoint appears once, giving
    // degree-proportional sampling.
    let mut pool: Vec<u32> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m);
    // Seed clique over the first m+1 vertices.
    for a in 0..=(m as u32) {
        for b in (a + 1)..=(m as u32) {
            edges.push((a, b));
            pool.push(a);
            pool.push(b);
        }
    }
    for v in (m + 1)..n {
        // Small sorted Vec instead of a HashSet: HashSet iteration order is
        // seeded per-instance and would break seed-determinism.
        let mut targets: Vec<u32> = Vec::with_capacity(m);
        while targets.len() < m {
            let t = pool[rng.below(pool.len())];
            if t as usize != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((v as u32, t));
            pool.push(v as u32);
            pool.push(t);
        }
    }
    // Shuffle labels to destroy locality.
    let mut relabel: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.below(i + 1);
        relabel.swap(i, j);
    }
    for e in &mut edges {
        *e = (relabel[e.0 as usize], relabel[e.1 as usize]);
    }
    Graph::from_edges(n, &edges, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh3d_structure() {
        let g = mesh3d(4, 3, 2);
        g.validate();
        assert_eq!(g.n, 24);
        // Edge count: x-edges 3*3*2 + y-edges 4*2*2 + z-edges 4*3*1.
        assert_eq!(g.edges(), 18 + 16 + 12);
        // Interior-ish vertex degree between 3 and 6.
        assert!((3..=6).contains(&g.degree(5)));
    }

    #[test]
    fn mesh2d_irregular_deterministic() {
        let a = mesh2d_irregular(20, 20, 0.1, 7);
        let b = mesh2d_irregular(20, 20, 0.1, 7);
        a.validate();
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.adj, b.adj);
        // Dropping edges must reduce the count below the full mesh.
        let full = mesh2d_irregular(20, 20, 0.0, 7);
        assert!(a.edges() < full.edges() + 50, "sanity");
        assert!(a.edges() > 300, "not degenerate");
    }

    #[test]
    fn geometric_degree_near_target() {
        let g = geometric(4000, 8.0, 0, 42);
        g.validate();
        let avg = 2.0 * g.edges() as f64 / g.n as f64;
        assert!(
            (4.0..14.0).contains(&avg),
            "average degree {avg} far from target 8"
        );
    }

    #[test]
    fn geometric_extra_edges_increase_count() {
        let base = geometric(2000, 8.0, 0, 1);
        let extra = geometric(2000, 8.0, 15, 1);
        assert!(extra.edges() > base.edges());
        let ratio = extra.edges() as f64 / base.edges() as f64;
        assert!(
            (1.05..1.30).contains(&ratio),
            "extra ratio {ratio} should be ~1.15"
        );
    }

    #[test]
    fn knn_degrees() {
        let g = knn(2000, 6, 3);
        g.validate();
        // Every vertex proposed k edges; mutual proposals merge, so degree
        // is at least k for most vertices and bounded by a small multiple.
        let avg = 2.0 * g.edges() as f64 / g.n as f64;
        assert!((6.0..13.0).contains(&avg), "avg degree {avg}");
        assert!((0..g.n).all(|v| g.degree(v) >= 1));
    }

    #[test]
    fn powerlaw_has_hubs() {
        let g = powerlaw(3000, 4, 9);
        g.validate();
        let max_deg = (0..g.n).map(|v| g.degree(v)).max().unwrap();
        assert!(
            max_deg > 50,
            "power-law graph should have hubs, max degree {max_deg}"
        );
        assert!(g.edges() >= 3000 * 4 - 4 * 4);
    }

    #[test]
    fn generators_are_seed_deterministic() {
        assert_eq!(powerlaw(500, 3, 5).adj, powerlaw(500, 3, 5).adj);
        assert_eq!(
            geometric(500, 6.0, 10, 5).adj,
            geometric(500, 6.0, 10, 5).adj
        );
        assert_eq!(knn(500, 4, 5).adj, knn(500, 4, 5).adj);
        // Different seeds give different graphs.
        assert_ne!(powerlaw(500, 3, 5).adj, powerlaw(500, 3, 6).adj);
    }
}
