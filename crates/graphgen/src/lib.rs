//! # graphgen — deterministic synthetic graphs with locality statistics
//!
//! Generates the graph-matching inputs for the reproduction of *"Optimization
//! of Asynchronous Communication Operations through Eager Notifications"*
//! (SC 2021). The paper evaluates on four SuiteSparse graphs plus one
//! application-generated random geometric graph; offline, this crate
//! substitutes seeded synthetic generators that preserve each input's
//! **edge-locality profile** under a block partition — the property the
//! paper identifies as determining the speedup (§IV-C). See
//! [`presets::Preset`] for the mapping and `DESIGN.md` §5 for the
//! substitution argument.

pub mod gen;
pub mod graph;
pub mod io;
pub mod partition;
pub mod presets;
pub mod rng;

pub use gen::{geometric, knn, mesh2d_irregular, mesh3d, powerlaw};
pub use graph::{pair_weight, splitmix64, Graph};
pub use io::{load, save, GraphIoError};
pub use partition::{BlockPartition, LocalityStats};
pub use presets::Preset;
pub use rng::SeededRng;
