//! The paper's five graph-matching inputs, as synthetic stand-ins.
//!
//! The originals are SuiteSparse matrices (plus one application-generated
//! random geometric graph), unavailable offline. Each stand-in reproduces
//! the *structural property the paper credits for its result*: the locality
//! profile under a 16-rank block partition (§IV-C attributes the speedup
//! ordering — channel ≈ 0 < venturi < random < delaunay < youtube — to how
//! many updates target co-located processes rather than the same process).
//!
//! | Input | Original | Stand-in | Locality |
//! |---|---|---|---|
//! | channel  | channel-500x100x100-b050 (4.8M v, 43M e) | 3D mesh | very high |
//! | delaunay | delaunay_n21 (2.1M v, 6.3M e) | k-NN planar-ish | moderate |
//! | venturi  | venturiLevel3 (4.0M v, 8.1M e) | irregular 2D mesh | high |
//! | youtube  | com-Youtube (1.1M v, 3.0M e) | shuffled power-law | very low |
//! | random   | app `--n 2000000 --p 15` | geometric + 15% long edges | moderate |
//!
//! Sizes are scaled by the `scale` parameter (1.0 ≈ tens of thousands of
//! vertices, sized for CI containers; the paper's inputs are ~100x larger —
//! a documented substitution, see DESIGN.md §5).

use crate::gen;
use crate::graph::Graph;

/// The five inputs of the paper's Figure 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Preset {
    /// channel-500x100x100-b050 stand-in: 3D mesh, most edges same-rank.
    Channel,
    /// delaunay_n21 stand-in: planar-ish k-NN graph.
    Delaunay,
    /// venturiLevel3 stand-in: mildly irregular 2D mesh.
    Venturi,
    /// com-Youtube stand-in: shuffled power-law, highly non-local.
    Youtube,
    /// The application's own generator (`--n 2000000 --p 15`): geometric
    /// with 15 long edges per 100 local ones.
    Random,
}

impl Preset {
    /// All presets, in the paper's Figure 8 order.
    pub const ALL: [Preset; 5] = [
        Preset::Channel,
        Preset::Delaunay,
        Preset::Venturi,
        Preset::Youtube,
        Preset::Random,
    ];

    /// The label used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Channel => "channel",
            Preset::Delaunay => "delaunay",
            Preset::Venturi => "venturi",
            Preset::Youtube => "youtube",
            Preset::Random => "random",
        }
    }

    /// Generate the stand-in graph at the given scale (vertex count is
    /// roughly `scale * 40_000`, clamped to a sane minimum).
    pub fn generate(self, scale: f64) -> Graph {
        let base = ((40_000.0 * scale) as usize).max(512);
        match self {
            Preset::Channel => {
                // Long thin mesh, extruded along the slowest-varying (z)
                // axis. The real channel-500x100x100 owes its locality to
                // per-rank blocks much larger than a cross-section plane;
                // at reduced scale the same ratio requires a thinner
                // cross-section (cross-section w*w, length 25w).
                let w = ((base as f64 / 25.0).cbrt()).round().max(2.0) as usize;
                gen::mesh3d(w, w, 25 * w)
            }
            Preset::Delaunay => gen::knn(base, 6, 0xDE1A),
            Preset::Venturi => gen::mesh2d_irregular(
                (base as f64).sqrt() as usize,
                (base as f64).sqrt() as usize,
                0.15,
                0x7E27,
            ),
            Preset::Youtube => gen::powerlaw(base, 3, 0x907B),
            Preset::Random => gen::geometric(base, 10.0, 15, 0x2A2D),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::LocalityStats;

    #[test]
    fn all_presets_generate_valid_graphs() {
        for p in Preset::ALL {
            let g = p.generate(0.05);
            g.validate();
            assert!(g.n >= 512, "{} too small", p.name());
            assert!(g.edges() > g.n / 2, "{} too sparse", p.name());
        }
    }

    #[test]
    fn locality_ordering_matches_paper() {
        // §IV-C: channel has the most same-process locality; youtube the
        // least. The stand-ins must preserve that ordering, which drives
        // the Figure 8 speedup ordering.
        let stats: Vec<(Preset, LocalityStats)> = Preset::ALL
            .iter()
            .map(|&p| (p, LocalityStats::measure(&p.generate(0.1), 16, 16)))
            .collect();
        let get = |p: Preset| stats.iter().find(|(q, _)| *q == p).unwrap().1;
        assert!(
            get(Preset::Channel).same_rank > get(Preset::Youtube).same_rank + 0.3,
            "channel {:.2} vs youtube {:.2}",
            get(Preset::Channel).same_rank,
            get(Preset::Youtube).same_rank
        );
        assert!(get(Preset::Channel).same_rank > 0.85);
        assert!(get(Preset::Youtube).same_rank < 0.3);
        // The middle three sit between the extremes.
        for p in [Preset::Delaunay, Preset::Venturi, Preset::Random] {
            let s = get(p).same_rank;
            assert!(
                s < get(Preset::Channel).same_rank && s > get(Preset::Youtube).same_rank,
                "{}: same_rank {s:.2} not between extremes",
                p.name()
            );
        }
    }

    #[test]
    fn scale_controls_size() {
        let small = Preset::Delaunay.generate(0.02);
        let large = Preset::Delaunay.generate(0.2);
        assert!(large.n > 3 * small.n);
    }
}
