//! Block vertex partitions and edge-locality statistics.
//!
//! The graph-matching application partitions vertices block-wise over
//! ranks. The paper attributes its per-input speedups to the fraction of
//! edges that cross ranks (same-process edges are manually optimized;
//! co-located-process edges take the RMA path that eager notification
//! accelerates). [`LocalityStats`] measures exactly that, and is printed by
//! the benchmark harness next to each stand-in graph.

use crate::graph::Graph;

/// A block (contiguous-range) partition of `n` vertices over `ranks` ranks.
/// The first `n % ranks` ranks get one extra vertex.
#[derive(Clone, Copy, Debug)]
pub struct BlockPartition {
    n: usize,
    ranks: usize,
}

impl BlockPartition {
    /// Create a partition of `n` vertices over `ranks` ranks.
    pub fn new(n: usize, ranks: usize) -> Self {
        assert!(ranks > 0 && n > 0);
        BlockPartition { n, ranks }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The rank owning vertex `v`.
    #[inline]
    pub fn owner(&self, v: usize) -> usize {
        debug_assert!(v < self.n);
        let base = self.n / self.ranks;
        let rem = self.n % self.ranks;
        let cutoff = rem * (base + 1);
        if v < cutoff {
            v / (base + 1)
        } else {
            rem + (v - cutoff) / base
        }
    }

    /// The contiguous vertex range owned by `rank`.
    pub fn range(&self, rank: usize) -> std::ops::Range<usize> {
        assert!(rank < self.ranks);
        let base = self.n / self.ranks;
        let rem = self.n % self.ranks;
        let lo = if rank < rem {
            rank * (base + 1)
        } else {
            rem * (base + 1) + (rank - rem) * base
        };
        let len = base + usize::from(rank < rem);
        lo..lo + len
    }

    /// Vertex `v`'s index within its owner's range.
    #[inline]
    pub fn local_index(&self, v: usize) -> usize {
        v - self.range(self.owner(v)).start
    }
}

/// Fractions of undirected edges by endpoint placement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LocalityStats {
    /// Both endpoints on the same rank (manually-optimized path).
    pub same_rank: f64,
    /// Different ranks on the same node (the RMA path eager notification
    /// accelerates).
    pub same_node: f64,
    /// Different nodes (network path).
    pub cross_node: f64,
}

impl LocalityStats {
    /// Measure `g` under a block partition over `ranks` ranks grouped
    /// `ranks_per_node` per node.
    pub fn measure(g: &Graph, ranks: usize, ranks_per_node: usize) -> LocalityStats {
        let part = BlockPartition::new(g.n, ranks);
        let (mut same_rank, mut same_node, mut cross_node) = (0u64, 0u64, 0u64);
        for v in 0..g.n {
            for (u, _) in g.neighbors(v) {
                let u = u as usize;
                if u < v {
                    continue; // count each undirected edge once
                }
                let (rv, ru) = (part.owner(v), part.owner(u));
                if rv == ru {
                    same_rank += 1;
                } else if rv / ranks_per_node == ru / ranks_per_node {
                    same_node += 1;
                } else {
                    cross_node += 1;
                }
            }
        }
        let total = (same_rank + same_node + cross_node).max(1) as f64;
        LocalityStats {
            same_rank: same_rank as f64 / total,
            same_node: same_node as f64 / total,
            cross_node: cross_node as f64 / total,
        }
    }

    /// Fraction of edges on paths the eager-notification work can affect
    /// (not same-rank: those are manually optimized by the application).
    pub fn rma_eligible(&self) -> f64 {
        self.same_node + self.cross_node
    }
}

impl std::fmt::Display for LocalityStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "same-rank {:5.1}%  co-located {:5.1}%  cross-node {:5.1}%",
            100.0 * self.same_rank,
            100.0 * self.same_node,
            100.0 * self.cross_node
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{mesh3d, powerlaw};

    #[test]
    fn block_partition_covers_everything_once() {
        for (n, ranks) in [(10, 3), (16, 16), (7, 2), (100, 16), (5, 8)] {
            if ranks > n {
                continue;
            }
            let p = BlockPartition::new(n, ranks);
            let mut seen = vec![false; n];
            for r in 0..ranks {
                for v in p.range(r) {
                    assert!(!seen[v], "vertex {v} in two ranges");
                    seen[v] = true;
                    assert_eq!(p.owner(v), r, "owner mismatch for {v}");
                    assert_eq!(p.local_index(v), v - p.range(r).start);
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn range_sizes_balanced() {
        let p = BlockPartition::new(10, 3);
        let sizes: Vec<usize> = (0..3).map(|r| p.range(r).len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn stats_sum_to_one() {
        let g = powerlaw(500, 3, 1);
        let s = LocalityStats::measure(&g, 16, 16);
        assert!((s.same_rank + s.same_node + s.cross_node - 1.0).abs() < 1e-9);
        assert!((s.rma_eligible() - (1.0 - s.same_rank)).abs() < 1e-9);
    }

    #[test]
    fn mesh_is_local_powerlaw_is_not() {
        // Thin extruded mesh: per-rank blocks span several cross-section
        // planes, so almost all edges stay on-rank.
        let mesh = mesh3d(8, 8, 64);
        let pl = powerlaw(4000, 4, 2);
        let sm = LocalityStats::measure(&mesh, 16, 16);
        let sp = LocalityStats::measure(&pl, 16, 16);
        assert!(
            sm.same_rank > 0.85,
            "mesh same-rank fraction {}",
            sm.same_rank
        );
        assert!(
            sp.same_rank < 0.25,
            "shuffled power-law same-rank fraction {}",
            sp.same_rank
        );
    }

    #[test]
    fn single_node_has_no_cross_node_edges() {
        let g = powerlaw(300, 3, 1);
        let s = LocalityStats::measure(&g, 16, 16);
        assert_eq!(s.cross_node, 0.0);
        let s2 = LocalityStats::measure(&g, 16, 4);
        assert!(s2.cross_node > 0.0);
    }
}
