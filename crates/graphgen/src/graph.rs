//! Undirected weighted graphs in CSR form.

/// An undirected graph with symmetric edge weights, stored as CSR with both
/// directions materialized (the layout the distributed matching code
/// partitions row-wise).
#[derive(Clone, Debug)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// CSR row offsets, length `n + 1`.
    pub xadj: Vec<usize>,
    /// Neighbor vertex ids, length `xadj[n]`.
    pub adj: Vec<u32>,
    /// Per-entry edge weight; symmetric (`w(u,v) == w(v,u)`).
    pub weight: Vec<f64>,
}

impl Graph {
    /// Build from an undirected edge list. Self-loops are dropped and
    /// duplicate edges collapsed. Weights are derived deterministically from
    /// the endpoint pair (symmetric, effectively distinct), unless
    /// `weights` supplies one per input edge.
    pub fn from_edges(n: usize, edges: &[(u32, u32)], weights: Option<&[f64]>) -> Graph {
        if let Some(w) = weights {
            assert_eq!(w.len(), edges.len(), "one weight per edge required");
        }
        // Canonicalize, drop self-loops, dedup.
        let mut canon: Vec<(u32, u32, f64)> = Vec::with_capacity(edges.len());
        for (i, &(a, b)) in edges.iter().enumerate() {
            if a == b {
                continue;
            }
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge endpoint out of range"
            );
            let (u, v) = if a < b { (a, b) } else { (b, a) };
            let w = weights.map_or_else(|| pair_weight(u, v), |ws| ws[i]);
            canon.push((u, v, w));
        }
        canon.sort_unstable_by_key(|x| (x.0, x.1));
        canon.dedup_by_key(|e| (e.0, e.1));

        // Degree count, both directions.
        let mut deg = vec![0usize; n];
        for &(u, v, _) in &canon {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0usize);
        for d in &deg {
            xadj.push(xadj.last().unwrap() + d);
        }
        let m2 = xadj[n];
        let mut adj = vec![0u32; m2];
        let mut weight = vec![0f64; m2];
        let mut cursor = xadj[..n].to_vec();
        for &(u, v, w) in &canon {
            adj[cursor[u as usize]] = v;
            weight[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            weight[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        Graph {
            n,
            xadj,
            adj,
            weight,
        }
    }

    /// Number of undirected edges.
    pub fn edges(&self) -> usize {
        self.xadj[self.n] / 2
    }

    /// Neighbors of `v` with weights.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let r = self.xadj[v]..self.xadj[v + 1];
        self.adj[r.clone()]
            .iter()
            .copied()
            .zip(self.weight[r].iter().copied())
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// The weight of edge `(u, v)`, if present.
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f64> {
        self.neighbors(u)
            .find(|&(w, _)| w as usize == v)
            .map(|(_, wt)| wt)
    }

    /// Total weight over undirected edges.
    pub fn total_weight(&self) -> f64 {
        self.weight.iter().sum::<f64>() / 2.0
    }

    /// Structural sanity checks: symmetric adjacency, symmetric weights, no
    /// self-loops, sorted-free duplicates. Used by tests and debug builds.
    pub fn validate(&self) {
        assert_eq!(self.xadj.len(), self.n + 1);
        assert_eq!(self.adj.len(), *self.xadj.last().unwrap());
        assert_eq!(self.adj.len(), self.weight.len());
        for v in 0..self.n {
            for (u, w) in self.neighbors(v) {
                assert_ne!(u as usize, v, "self-loop at {v}");
                let back = self
                    .edge_weight(u as usize, v)
                    .unwrap_or_else(|| panic!("edge ({v},{u}) missing reverse direction"));
                assert_eq!(
                    back.to_bits(),
                    w.to_bits(),
                    "asymmetric weight on ({v},{u})"
                );
            }
        }
    }
}

/// Deterministic symmetric edge weight in (0, 1), effectively unique per
/// endpoint pair (64-bit mix of the canonical pair).
pub fn pair_weight(u: u32, v: u32) -> f64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    let mixed = splitmix64(((a as u64) << 32) | b as u64);
    // Map to (0,1), avoiding exactly 0.
    (mixed >> 11) as f64 / (1u64 << 53) as f64 + f64::MIN_POSITIVE
}

/// SplitMix64, the crate's deterministic mixing primitive.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_graph() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], None);
        g.validate();
        assert_eq!(g.edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert!(g.edge_weight(0, 1).is_some());
        assert_eq!(g.edge_weight(0, 1), g.edge_weight(1, 0));
    }

    #[test]
    fn self_loops_and_duplicates_removed() {
        let g = Graph::from_edges(3, &[(0, 0), (0, 1), (1, 0), (0, 1)], None);
        g.validate();
        assert_eq!(g.edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn explicit_weights_respected() {
        let g = Graph::from_edges(2, &[(0, 1)], Some(&[2.5]));
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
        assert_eq!(g.total_weight(), 2.5);
    }

    #[test]
    fn pair_weights_symmetric_and_distinct() {
        assert_eq!(pair_weight(3, 7), pair_weight(7, 3));
        let mut seen = std::collections::HashSet::new();
        for u in 0..50u32 {
            for v in (u + 1)..50u32 {
                assert!(
                    seen.insert(pair_weight(u, v).to_bits()),
                    "collision at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(4, &[], None);
        g.validate();
        assert_eq!(g.edges(), 0);
        assert_eq!(g.total_weight(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, &[(0, 5)], None);
    }
}
