//! Graph file I/O.
//!
//! The paper's random input was produced by running the application's
//! generator once, *saving the graph to a file*, and reusing it across all
//! runs (§IV-C). This module provides that workflow: a simple text format
//! (one `u v w` edge per line after an `n m` header, weights as exact hex
//! bit patterns so roundtrips are bitwise) plus save/load helpers.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::graph::Graph;

/// Errors from reading a graph file.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Parse { line: usize, msg: String },
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "graph file I/O error: {e}"),
            GraphIoError::Parse { line, msg } => {
                write!(f, "graph file parse error at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Write `g` to `path` in the text edge-list format.
pub fn save(g: &Graph, path: impl AsRef<Path>) -> Result<(), GraphIoError> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "{} {}", g.n, g.edges())?;
    for v in 0..g.n {
        for (u, wt) in g.neighbors(v) {
            if (v as u32) < u {
                // Exact bit pattern: weights roundtrip losslessly.
                writeln!(w, "{} {} {:016x}", v, u, wt.to_bits())?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Read a graph previously written by [`save`].
pub fn load(path: impl AsRef<Path>) -> Result<Graph, GraphIoError> {
    let f = std::fs::File::open(path)?;
    let mut lines = BufReader::new(f).lines();
    let header = lines.next().ok_or(GraphIoError::Parse {
        line: 1,
        msg: "empty file".into(),
    })??;
    let mut it = header.split_whitespace();
    let n: usize = parse_field(&mut it, 1, "vertex count")?;
    let m: usize = parse_field(&mut it, 1, "edge count")?;
    let mut edges = Vec::with_capacity(m);
    let mut weights = Vec::with_capacity(m);
    for (i, line) in lines.enumerate() {
        let line = line?;
        let lineno = i + 2;
        if line.trim().is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: u32 = parse_field(&mut it, lineno, "source vertex")?;
        let v: u32 = parse_field(&mut it, lineno, "target vertex")?;
        let wbits = it.next().ok_or_else(|| GraphIoError::Parse {
            line: lineno,
            msg: "missing weight".into(),
        })?;
        let bits = u64::from_str_radix(wbits, 16).map_err(|e| GraphIoError::Parse {
            line: lineno,
            msg: format!("bad weight {wbits:?}: {e}"),
        })?;
        edges.push((u, v));
        weights.push(f64::from_bits(bits));
    }
    if edges.len() != m {
        return Err(GraphIoError::Parse {
            line: 1,
            msg: format!("header claims {m} edges, file has {}", edges.len()),
        });
    }
    Ok(Graph::from_edges(n, &edges, Some(&weights)))
}

fn parse_field<T: std::str::FromStr>(
    it: &mut std::str::SplitWhitespace<'_>,
    line: usize,
    what: &str,
) -> Result<T, GraphIoError>
where
    T::Err: std::fmt::Display,
{
    let s = it.next().ok_or_else(|| GraphIoError::Parse {
        line,
        msg: format!("missing {what}"),
    })?;
    s.parse().map_err(|e| GraphIoError::Parse {
        line,
        msg: format!("bad {what} {s:?}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::geometric;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphgen-io-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_graph_exactly() {
        let g = geometric(500, 8.0, 15, 42);
        let path = tmpfile("roundtrip.txt");
        save(&g, &path).unwrap();
        let h = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.n, h.n);
        assert_eq!(g.xadj, h.xadj);
        assert_eq!(g.adj, h.adj);
        // Weights roundtrip bitwise.
        assert_eq!(
            g.weight.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            h.weight.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn load_rejects_truncated_file() {
        let path = tmpfile("truncated.txt");
        std::fs::write(&path, "10 5\n0 1 3ff0000000000000\n").unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("claims 5 edges"));
    }

    #[test]
    fn load_rejects_garbage_weight() {
        let path = tmpfile("garbage.txt");
        std::fs::write(&path, "4 1\n0 1 zzzz\n").unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, GraphIoError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load("/nonexistent/definitely/missing.graph").unwrap_err();
        assert!(matches!(err, GraphIoError::Io(_)));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = crate::graph::Graph::from_edges(3, &[], None);
        let path = tmpfile("empty.txt");
        save(&g, &path).unwrap();
        let h = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(h.n, 3);
        assert_eq!(h.edges(), 0);
    }
}
