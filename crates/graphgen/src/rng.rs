//! Seeded pseudo-random stream for the graph generators.
//!
//! A SplitMix64 counter stream: statistically solid for the generators'
//! needs (uniform point placement, edge dropping, pool sampling, label
//! shuffles), dependency-free, and trivially reproducible — the same seed
//! always yields the same graph on every platform. `below` uses the
//! widening-multiply trick instead of modulo, so small ranges are unbiased
//! to within 2⁻⁶⁴.

use crate::graph::splitmix64;

/// A deterministic 64-bit PRNG stream seeded from a single `u64`.
#[derive(Clone, Debug)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// A stream whose outputs are a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> SeededRng {
        // Pre-mix so that small consecutive seeds give unrelated streams.
        SeededRng {
            state: splitmix64(seed ^ 0x6A09_E667_F3BC_C909),
        }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::seed_from_u64(42);
        let mut b = SeededRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SeededRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SeededRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((0.47..0.53).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn below_covers_range_without_bias_blowup() {
        let mut r = SeededRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.below(8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i} count {c} not ~1000");
        }
    }
}
