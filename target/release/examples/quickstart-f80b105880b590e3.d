/root/repo/target/release/examples/quickstart-f80b105880b590e3.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f80b105880b590e3: examples/quickstart.rs

examples/quickstart.rs:
