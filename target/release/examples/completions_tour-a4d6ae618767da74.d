/root/repo/target/release/examples/completions_tour-a4d6ae618767da74.d: examples/completions_tour.rs

/root/repo/target/release/examples/completions_tour-a4d6ae618767da74: examples/completions_tour.rs

examples/completions_tour.rs:
