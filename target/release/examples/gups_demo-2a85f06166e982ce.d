/root/repo/target/release/examples/gups_demo-2a85f06166e982ce.d: examples/gups_demo.rs

/root/repo/target/release/examples/gups_demo-2a85f06166e982ce: examples/gups_demo.rs

examples/gups_demo.rs:
