/root/repo/target/release/deps/gups-e9139a5423ec819a.d: crates/gups/src/lib.rs crates/gups/src/bucketed.rs crates/gups/src/config.rs crates/gups/src/harness.rs crates/gups/src/rng.rs crates/gups/src/table.rs crates/gups/src/variants.rs

/root/repo/target/release/deps/libgups-e9139a5423ec819a.rlib: crates/gups/src/lib.rs crates/gups/src/bucketed.rs crates/gups/src/config.rs crates/gups/src/harness.rs crates/gups/src/rng.rs crates/gups/src/table.rs crates/gups/src/variants.rs

/root/repo/target/release/deps/libgups-e9139a5423ec819a.rmeta: crates/gups/src/lib.rs crates/gups/src/bucketed.rs crates/gups/src/config.rs crates/gups/src/harness.rs crates/gups/src/rng.rs crates/gups/src/table.rs crates/gups/src/variants.rs

crates/gups/src/lib.rs:
crates/gups/src/bucketed.rs:
crates/gups/src/config.rs:
crates/gups/src/harness.rs:
crates/gups/src/rng.rs:
crates/gups/src/table.rs:
crates/gups/src/variants.rs:
