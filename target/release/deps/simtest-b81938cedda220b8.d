/root/repo/target/release/deps/simtest-b81938cedda220b8.d: crates/simtest/src/bin/simtest.rs

/root/repo/target/release/deps/simtest-b81938cedda220b8: crates/simtest/src/bin/simtest.rs

crates/simtest/src/bin/simtest.rs:
