/root/repo/target/release/deps/matching-204635221da4268c.d: crates/matching/src/lib.rs crates/matching/src/dist.rs crates/matching/src/dist_mp.rs crates/matching/src/harness.rs crates/matching/src/sequential.rs

/root/repo/target/release/deps/libmatching-204635221da4268c.rlib: crates/matching/src/lib.rs crates/matching/src/dist.rs crates/matching/src/dist_mp.rs crates/matching/src/harness.rs crates/matching/src/sequential.rs

/root/repo/target/release/deps/libmatching-204635221da4268c.rmeta: crates/matching/src/lib.rs crates/matching/src/dist.rs crates/matching/src/dist_mp.rs crates/matching/src/harness.rs crates/matching/src/sequential.rs

crates/matching/src/lib.rs:
crates/matching/src/dist.rs:
crates/matching/src/dist_mp.rs:
crates/matching/src/harness.rs:
crates/matching/src/sequential.rs:
