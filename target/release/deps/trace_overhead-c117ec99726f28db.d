/root/repo/target/release/deps/trace_overhead-c117ec99726f28db.d: crates/bench/benches/trace_overhead.rs

/root/repo/target/release/deps/trace_overhead-c117ec99726f28db: crates/bench/benches/trace_overhead.rs

crates/bench/benches/trace_overhead.rs:
