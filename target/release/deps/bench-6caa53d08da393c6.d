/root/repo/target/release/deps/bench-6caa53d08da393c6.d: crates/bench/src/lib.rs crates/bench/src/criterion.rs

/root/repo/target/release/deps/libbench-6caa53d08da393c6.rlib: crates/bench/src/lib.rs crates/bench/src/criterion.rs

/root/repo/target/release/deps/libbench-6caa53d08da393c6.rmeta: crates/bench/src/lib.rs crates/bench/src/criterion.rs

crates/bench/src/lib.rs:
crates/bench/src/criterion.rs:
