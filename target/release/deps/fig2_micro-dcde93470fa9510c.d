/root/repo/target/release/deps/fig2_micro-dcde93470fa9510c.d: crates/bench/benches/fig2_micro.rs

/root/repo/target/release/deps/fig2_micro-dcde93470fa9510c: crates/bench/benches/fig2_micro.rs

crates/bench/benches/fig2_micro.rs:
