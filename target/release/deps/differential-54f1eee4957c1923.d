/root/repo/target/release/deps/differential-54f1eee4957c1923.d: crates/simtest/tests/differential.rs

/root/repo/target/release/deps/differential-54f1eee4957c1923: crates/simtest/tests/differential.rs

crates/simtest/tests/differential.rs:
