/root/repo/target/release/deps/differential-70f3c5f8aa29ed2c.d: crates/simtest/tests/differential.rs

/root/repo/target/release/deps/differential-70f3c5f8aa29ed2c: crates/simtest/tests/differential.rs

crates/simtest/tests/differential.rs:
