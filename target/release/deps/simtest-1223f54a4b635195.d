/root/repo/target/release/deps/simtest-1223f54a4b635195.d: crates/simtest/src/lib.rs

/root/repo/target/release/deps/simtest-1223f54a4b635195: crates/simtest/src/lib.rs

crates/simtest/src/lib.rs:
