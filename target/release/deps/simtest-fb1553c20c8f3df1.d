/root/repo/target/release/deps/simtest-fb1553c20c8f3df1.d: crates/simtest/src/lib.rs

/root/repo/target/release/deps/libsimtest-fb1553c20c8f3df1.rlib: crates/simtest/src/lib.rs

/root/repo/target/release/deps/libsimtest-fb1553c20c8f3df1.rmeta: crates/simtest/src/lib.rs

crates/simtest/src/lib.rs:
