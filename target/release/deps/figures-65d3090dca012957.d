/root/repo/target/release/deps/figures-65d3090dca012957.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-65d3090dca012957: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
