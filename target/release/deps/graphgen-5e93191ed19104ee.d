/root/repo/target/release/deps/graphgen-5e93191ed19104ee.d: crates/graphgen/src/lib.rs crates/graphgen/src/gen.rs crates/graphgen/src/graph.rs crates/graphgen/src/io.rs crates/graphgen/src/partition.rs crates/graphgen/src/presets.rs crates/graphgen/src/rng.rs

/root/repo/target/release/deps/libgraphgen-5e93191ed19104ee.rlib: crates/graphgen/src/lib.rs crates/graphgen/src/gen.rs crates/graphgen/src/graph.rs crates/graphgen/src/io.rs crates/graphgen/src/partition.rs crates/graphgen/src/presets.rs crates/graphgen/src/rng.rs

/root/repo/target/release/deps/libgraphgen-5e93191ed19104ee.rmeta: crates/graphgen/src/lib.rs crates/graphgen/src/gen.rs crates/graphgen/src/graph.rs crates/graphgen/src/io.rs crates/graphgen/src/partition.rs crates/graphgen/src/presets.rs crates/graphgen/src/rng.rs

crates/graphgen/src/lib.rs:
crates/graphgen/src/gen.rs:
crates/graphgen/src/graph.rs:
crates/graphgen/src/io.rs:
crates/graphgen/src/partition.rs:
crates/graphgen/src/presets.rs:
crates/graphgen/src/rng.rs:
