/root/repo/target/release/deps/simtest-2881dd5f425fe6c7.d: crates/simtest/src/bin/simtest.rs

/root/repo/target/release/deps/simtest-2881dd5f425fe6c7: crates/simtest/src/bin/simtest.rs

crates/simtest/src/bin/simtest.rs:
