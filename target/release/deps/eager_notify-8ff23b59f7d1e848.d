/root/repo/target/release/deps/eager_notify-8ff23b59f7d1e848.d: src/lib.rs

/root/repo/target/release/deps/libeager_notify-8ff23b59f7d1e848.rlib: src/lib.rs

/root/repo/target/release/deps/libeager_notify-8ff23b59f7d1e848.rmeta: src/lib.rs

src/lib.rs:
