/root/repo/target/release/deps/gasnex-8c18c184aae703f6.d: crates/gasnex/src/lib.rs crates/gasnex/src/alloc.rs crates/gasnex/src/am.rs crates/gasnex/src/amo.rs crates/gasnex/src/collectives.rs crates/gasnex/src/config.rs crates/gasnex/src/event.rs crates/gasnex/src/mailbox.rs crates/gasnex/src/net.rs crates/gasnex/src/rank.rs crates/gasnex/src/segment.rs crates/gasnex/src/world.rs

/root/repo/target/release/deps/libgasnex-8c18c184aae703f6.rlib: crates/gasnex/src/lib.rs crates/gasnex/src/alloc.rs crates/gasnex/src/am.rs crates/gasnex/src/amo.rs crates/gasnex/src/collectives.rs crates/gasnex/src/config.rs crates/gasnex/src/event.rs crates/gasnex/src/mailbox.rs crates/gasnex/src/net.rs crates/gasnex/src/rank.rs crates/gasnex/src/segment.rs crates/gasnex/src/world.rs

/root/repo/target/release/deps/libgasnex-8c18c184aae703f6.rmeta: crates/gasnex/src/lib.rs crates/gasnex/src/alloc.rs crates/gasnex/src/am.rs crates/gasnex/src/amo.rs crates/gasnex/src/collectives.rs crates/gasnex/src/config.rs crates/gasnex/src/event.rs crates/gasnex/src/mailbox.rs crates/gasnex/src/net.rs crates/gasnex/src/rank.rs crates/gasnex/src/segment.rs crates/gasnex/src/world.rs

crates/gasnex/src/lib.rs:
crates/gasnex/src/alloc.rs:
crates/gasnex/src/am.rs:
crates/gasnex/src/amo.rs:
crates/gasnex/src/collectives.rs:
crates/gasnex/src/config.rs:
crates/gasnex/src/event.rs:
crates/gasnex/src/mailbox.rs:
crates/gasnex/src/net.rs:
crates/gasnex/src/rank.rs:
crates/gasnex/src/segment.rs:
crates/gasnex/src/world.rs:
