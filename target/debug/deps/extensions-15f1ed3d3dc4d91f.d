/root/repo/target/debug/deps/extensions-15f1ed3d3dc4d91f.d: crates/core/tests/extensions.rs

/root/repo/target/debug/deps/extensions-15f1ed3d3dc4d91f: crates/core/tests/extensions.rs

crates/core/tests/extensions.rs:
