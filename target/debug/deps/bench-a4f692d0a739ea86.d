/root/repo/target/debug/deps/bench-a4f692d0a739ea86.d: crates/bench/src/lib.rs crates/bench/src/criterion.rs

/root/repo/target/debug/deps/libbench-a4f692d0a739ea86.rlib: crates/bench/src/lib.rs crates/bench/src/criterion.rs

/root/repo/target/debug/deps/libbench-a4f692d0a739ea86.rmeta: crates/bench/src/lib.rs crates/bench/src/criterion.rs

crates/bench/src/lib.rs:
crates/bench/src/criterion.rs:
