/root/repo/target/debug/deps/simtest-7a85bd0463de6180.d: crates/simtest/src/bin/simtest.rs Cargo.toml

/root/repo/target/debug/deps/libsimtest-7a85bd0463de6180.rmeta: crates/simtest/src/bin/simtest.rs Cargo.toml

crates/simtest/src/bin/simtest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
