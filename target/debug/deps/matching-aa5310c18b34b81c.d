/root/repo/target/debug/deps/matching-aa5310c18b34b81c.d: crates/matching/src/lib.rs crates/matching/src/dist.rs crates/matching/src/dist_mp.rs crates/matching/src/harness.rs crates/matching/src/sequential.rs

/root/repo/target/debug/deps/matching-aa5310c18b34b81c: crates/matching/src/lib.rs crates/matching/src/dist.rs crates/matching/src/dist_mp.rs crates/matching/src/harness.rs crates/matching/src/sequential.rs

crates/matching/src/lib.rs:
crates/matching/src/dist.rs:
crates/matching/src/dist_mp.rs:
crates/matching/src/harness.rs:
crates/matching/src/sequential.rs:
