/root/repo/target/debug/deps/spmd-8f6feb37a8df2a4d.d: crates/core/tests/spmd.rs Cargo.toml

/root/repo/target/debug/deps/libspmd-8f6feb37a8df2a4d.rmeta: crates/core/tests/spmd.rs Cargo.toml

crates/core/tests/spmd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
