/root/repo/target/debug/deps/eager_notify-6c48a6d3b19462b3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libeager_notify-6c48a6d3b19462b3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
