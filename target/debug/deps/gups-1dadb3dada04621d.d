/root/repo/target/debug/deps/gups-1dadb3dada04621d.d: crates/gups/src/lib.rs crates/gups/src/bucketed.rs crates/gups/src/config.rs crates/gups/src/harness.rs crates/gups/src/rng.rs crates/gups/src/table.rs crates/gups/src/variants.rs

/root/repo/target/debug/deps/libgups-1dadb3dada04621d.rlib: crates/gups/src/lib.rs crates/gups/src/bucketed.rs crates/gups/src/config.rs crates/gups/src/harness.rs crates/gups/src/rng.rs crates/gups/src/table.rs crates/gups/src/variants.rs

/root/repo/target/debug/deps/libgups-1dadb3dada04621d.rmeta: crates/gups/src/lib.rs crates/gups/src/bucketed.rs crates/gups/src/config.rs crates/gups/src/harness.rs crates/gups/src/rng.rs crates/gups/src/table.rs crates/gups/src/variants.rs

crates/gups/src/lib.rs:
crates/gups/src/bucketed.rs:
crates/gups/src/config.rs:
crates/gups/src/harness.rs:
crates/gups/src/rng.rs:
crates/gups/src/table.rs:
crates/gups/src/variants.rs:
