/root/repo/target/debug/deps/figures-3d47f9b234c84af9.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-3d47f9b234c84af9: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
