/root/repo/target/debug/deps/matching-ae3c993173ad727f.d: crates/matching/src/lib.rs crates/matching/src/dist.rs crates/matching/src/dist_mp.rs crates/matching/src/harness.rs crates/matching/src/sequential.rs Cargo.toml

/root/repo/target/debug/deps/libmatching-ae3c993173ad727f.rmeta: crates/matching/src/lib.rs crates/matching/src/dist.rs crates/matching/src/dist_mp.rs crates/matching/src/harness.rs crates/matching/src/sequential.rs Cargo.toml

crates/matching/src/lib.rs:
crates/matching/src/dist.rs:
crates/matching/src/dist_mp.rs:
crates/matching/src/harness.rs:
crates/matching/src/sequential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
