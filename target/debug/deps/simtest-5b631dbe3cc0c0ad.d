/root/repo/target/debug/deps/simtest-5b631dbe3cc0c0ad.d: crates/simtest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsimtest-5b631dbe3cc0c0ad.rmeta: crates/simtest/src/lib.rs Cargo.toml

crates/simtest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
