/root/repo/target/debug/deps/eager_notify-5afb45b241a19f95.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libeager_notify-5afb45b241a19f95.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
