/root/repo/target/debug/deps/differential-c632f5ff0bde457f.d: crates/simtest/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-c632f5ff0bde457f.rmeta: crates/simtest/tests/differential.rs Cargo.toml

crates/simtest/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
