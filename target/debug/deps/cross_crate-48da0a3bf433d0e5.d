/root/repo/target/debug/deps/cross_crate-48da0a3bf433d0e5.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-48da0a3bf433d0e5: tests/cross_crate.rs

tests/cross_crate.rs:
