/root/repo/target/debug/deps/fig8_matching-bdff7c6a38241f09.d: crates/bench/benches/fig8_matching.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_matching-bdff7c6a38241f09.rmeta: crates/bench/benches/fig8_matching.rs Cargo.toml

crates/bench/benches/fig8_matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
