/root/repo/target/debug/deps/figures-2397ce0c651018a1.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-2397ce0c651018a1: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
