/root/repo/target/debug/deps/upcr-1e64b86c50d4eabf.d: crates/core/src/lib.rs crates/core/src/atomics.rs crates/core/src/completion.rs crates/core/src/ctx.rs crates/core/src/dist_object.rs crates/core/src/future/mod.rs crates/core/src/future/cell.rs crates/core/src/future/future.rs crates/core/src/future/promise.rs crates/core/src/future/when_all.rs crates/core/src/global_ptr.rs crates/core/src/reduce.rs crates/core/src/rma.rs crates/core/src/rpc.rs crates/core/src/runtime.rs crates/core/src/ser.rs crates/core/src/stats.rs crates/core/src/trace/mod.rs crates/core/src/trace/export.rs crates/core/src/trace/hist.rs crates/core/src/trace/ring.rs crates/core/src/version.rs crates/core/src/vis.rs

/root/repo/target/debug/deps/upcr-1e64b86c50d4eabf: crates/core/src/lib.rs crates/core/src/atomics.rs crates/core/src/completion.rs crates/core/src/ctx.rs crates/core/src/dist_object.rs crates/core/src/future/mod.rs crates/core/src/future/cell.rs crates/core/src/future/future.rs crates/core/src/future/promise.rs crates/core/src/future/when_all.rs crates/core/src/global_ptr.rs crates/core/src/reduce.rs crates/core/src/rma.rs crates/core/src/rpc.rs crates/core/src/runtime.rs crates/core/src/ser.rs crates/core/src/stats.rs crates/core/src/trace/mod.rs crates/core/src/trace/export.rs crates/core/src/trace/hist.rs crates/core/src/trace/ring.rs crates/core/src/version.rs crates/core/src/vis.rs

crates/core/src/lib.rs:
crates/core/src/atomics.rs:
crates/core/src/completion.rs:
crates/core/src/ctx.rs:
crates/core/src/dist_object.rs:
crates/core/src/future/mod.rs:
crates/core/src/future/cell.rs:
crates/core/src/future/future.rs:
crates/core/src/future/promise.rs:
crates/core/src/future/when_all.rs:
crates/core/src/global_ptr.rs:
crates/core/src/reduce.rs:
crates/core/src/rma.rs:
crates/core/src/rpc.rs:
crates/core/src/runtime.rs:
crates/core/src/ser.rs:
crates/core/src/stats.rs:
crates/core/src/trace/mod.rs:
crates/core/src/trace/export.rs:
crates/core/src/trace/hist.rs:
crates/core/src/trace/ring.rs:
crates/core/src/version.rs:
crates/core/src/vis.rs:
