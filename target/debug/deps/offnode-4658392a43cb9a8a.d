/root/repo/target/debug/deps/offnode-4658392a43cb9a8a.d: crates/bench/benches/offnode.rs

/root/repo/target/debug/deps/offnode-4658392a43cb9a8a: crates/bench/benches/offnode.rs

crates/bench/benches/offnode.rs:
