/root/repo/target/debug/deps/trace_overhead-983662f46f95937e.d: crates/bench/benches/trace_overhead.rs

/root/repo/target/debug/deps/trace_overhead-983662f46f95937e: crates/bench/benches/trace_overhead.rs

crates/bench/benches/trace_overhead.rs:
