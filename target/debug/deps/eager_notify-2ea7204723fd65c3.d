/root/repo/target/debug/deps/eager_notify-2ea7204723fd65c3.d: src/lib.rs

/root/repo/target/debug/deps/libeager_notify-2ea7204723fd65c3.rlib: src/lib.rs

/root/repo/target/debug/deps/libeager_notify-2ea7204723fd65c3.rmeta: src/lib.rs

src/lib.rs:
