/root/repo/target/debug/deps/wakeup_engine-919c62a04b511836.d: crates/core/tests/wakeup_engine.rs

/root/repo/target/debug/deps/wakeup_engine-919c62a04b511836: crates/core/tests/wakeup_engine.rs

crates/core/tests/wakeup_engine.rs:
