/root/repo/target/debug/deps/gups-734b2f149606de7b.d: crates/gups/src/bin/gups.rs

/root/repo/target/debug/deps/gups-734b2f149606de7b: crates/gups/src/bin/gups.rs

crates/gups/src/bin/gups.rs:
