/root/repo/target/debug/deps/spmd-0c730c23963a2f6b.d: crates/core/tests/spmd.rs

/root/repo/target/debug/deps/spmd-0c730c23963a2f6b: crates/core/tests/spmd.rs

crates/core/tests/spmd.rs:
