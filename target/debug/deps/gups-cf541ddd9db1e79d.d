/root/repo/target/debug/deps/gups-cf541ddd9db1e79d.d: crates/gups/src/bin/gups.rs Cargo.toml

/root/repo/target/debug/deps/libgups-cf541ddd9db1e79d.rmeta: crates/gups/src/bin/gups.rs Cargo.toml

crates/gups/src/bin/gups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
