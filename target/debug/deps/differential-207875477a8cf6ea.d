/root/repo/target/debug/deps/differential-207875477a8cf6ea.d: crates/simtest/tests/differential.rs

/root/repo/target/debug/deps/differential-207875477a8cf6ea: crates/simtest/tests/differential.rs

crates/simtest/tests/differential.rs:
