/root/repo/target/debug/deps/fig2_micro-0b21482cf2b92832.d: crates/bench/benches/fig2_micro.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_micro-0b21482cf2b92832.rmeta: crates/bench/benches/fig2_micro.rs Cargo.toml

crates/bench/benches/fig2_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
