/root/repo/target/debug/deps/gups-3a29281871cd7caf.d: crates/gups/src/lib.rs crates/gups/src/bucketed.rs crates/gups/src/config.rs crates/gups/src/harness.rs crates/gups/src/rng.rs crates/gups/src/table.rs crates/gups/src/variants.rs

/root/repo/target/debug/deps/gups-3a29281871cd7caf: crates/gups/src/lib.rs crates/gups/src/bucketed.rs crates/gups/src/config.rs crates/gups/src/harness.rs crates/gups/src/rng.rs crates/gups/src/table.rs crates/gups/src/variants.rs

crates/gups/src/lib.rs:
crates/gups/src/bucketed.rs:
crates/gups/src/config.rs:
crates/gups/src/harness.rs:
crates/gups/src/rng.rs:
crates/gups/src/table.rs:
crates/gups/src/variants.rs:
