/root/repo/target/debug/deps/simtest-158ddd16a14e3020.d: crates/simtest/src/bin/simtest.rs

/root/repo/target/debug/deps/simtest-158ddd16a14e3020: crates/simtest/src/bin/simtest.rs

crates/simtest/src/bin/simtest.rs:
