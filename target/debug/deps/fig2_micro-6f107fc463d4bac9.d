/root/repo/target/debug/deps/fig2_micro-6f107fc463d4bac9.d: crates/bench/benches/fig2_micro.rs

/root/repo/target/debug/deps/fig2_micro-6f107fc463d4bac9: crates/bench/benches/fig2_micro.rs

crates/bench/benches/fig2_micro.rs:
