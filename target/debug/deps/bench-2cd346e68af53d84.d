/root/repo/target/debug/deps/bench-2cd346e68af53d84.d: crates/bench/src/lib.rs crates/bench/src/criterion.rs Cargo.toml

/root/repo/target/debug/deps/libbench-2cd346e68af53d84.rmeta: crates/bench/src/lib.rs crates/bench/src/criterion.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/criterion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
