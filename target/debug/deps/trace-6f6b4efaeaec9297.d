/root/repo/target/debug/deps/trace-6f6b4efaeaec9297.d: crates/core/tests/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtrace-6f6b4efaeaec9297.rmeta: crates/core/tests/trace.rs Cargo.toml

crates/core/tests/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
