/root/repo/target/debug/deps/property-f854ee06a8408d5d.d: tests/property.rs Cargo.toml

/root/repo/target/debug/deps/libproperty-f854ee06a8408d5d.rmeta: tests/property.rs Cargo.toml

tests/property.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
