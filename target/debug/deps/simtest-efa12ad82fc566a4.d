/root/repo/target/debug/deps/simtest-efa12ad82fc566a4.d: crates/simtest/src/lib.rs

/root/repo/target/debug/deps/simtest-efa12ad82fc566a4: crates/simtest/src/lib.rs

crates/simtest/src/lib.rs:
