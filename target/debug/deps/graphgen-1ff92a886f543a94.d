/root/repo/target/debug/deps/graphgen-1ff92a886f543a94.d: crates/graphgen/src/lib.rs crates/graphgen/src/gen.rs crates/graphgen/src/graph.rs crates/graphgen/src/io.rs crates/graphgen/src/partition.rs crates/graphgen/src/presets.rs crates/graphgen/src/rng.rs

/root/repo/target/debug/deps/libgraphgen-1ff92a886f543a94.rlib: crates/graphgen/src/lib.rs crates/graphgen/src/gen.rs crates/graphgen/src/graph.rs crates/graphgen/src/io.rs crates/graphgen/src/partition.rs crates/graphgen/src/presets.rs crates/graphgen/src/rng.rs

/root/repo/target/debug/deps/libgraphgen-1ff92a886f543a94.rmeta: crates/graphgen/src/lib.rs crates/graphgen/src/gen.rs crates/graphgen/src/graph.rs crates/graphgen/src/io.rs crates/graphgen/src/partition.rs crates/graphgen/src/presets.rs crates/graphgen/src/rng.rs

crates/graphgen/src/lib.rs:
crates/graphgen/src/gen.rs:
crates/graphgen/src/graph.rs:
crates/graphgen/src/io.rs:
crates/graphgen/src/partition.rs:
crates/graphgen/src/presets.rs:
crates/graphgen/src/rng.rs:
