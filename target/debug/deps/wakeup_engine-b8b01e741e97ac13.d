/root/repo/target/debug/deps/wakeup_engine-b8b01e741e97ac13.d: crates/core/tests/wakeup_engine.rs Cargo.toml

/root/repo/target/debug/deps/libwakeup_engine-b8b01e741e97ac13.rmeta: crates/core/tests/wakeup_engine.rs Cargo.toml

crates/core/tests/wakeup_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
