/root/repo/target/debug/deps/eager_notify-498d0b62db28747d.d: src/lib.rs

/root/repo/target/debug/deps/eager_notify-498d0b62db28747d: src/lib.rs

src/lib.rs:
