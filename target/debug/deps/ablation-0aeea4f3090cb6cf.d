/root/repo/target/debug/deps/ablation-0aeea4f3090cb6cf.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-0aeea4f3090cb6cf: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
