/root/repo/target/debug/deps/offnode-da526d35db77c3c2.d: crates/bench/benches/offnode.rs Cargo.toml

/root/repo/target/debug/deps/liboffnode-da526d35db77c3c2.rmeta: crates/bench/benches/offnode.rs Cargo.toml

crates/bench/benches/offnode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
