/root/repo/target/debug/deps/gasnex-4dceaad00275ba99.d: crates/gasnex/src/lib.rs crates/gasnex/src/alloc.rs crates/gasnex/src/am.rs crates/gasnex/src/amo.rs crates/gasnex/src/collectives.rs crates/gasnex/src/config.rs crates/gasnex/src/event.rs crates/gasnex/src/mailbox.rs crates/gasnex/src/net.rs crates/gasnex/src/rank.rs crates/gasnex/src/segment.rs crates/gasnex/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libgasnex-4dceaad00275ba99.rmeta: crates/gasnex/src/lib.rs crates/gasnex/src/alloc.rs crates/gasnex/src/am.rs crates/gasnex/src/amo.rs crates/gasnex/src/collectives.rs crates/gasnex/src/config.rs crates/gasnex/src/event.rs crates/gasnex/src/mailbox.rs crates/gasnex/src/net.rs crates/gasnex/src/rank.rs crates/gasnex/src/segment.rs crates/gasnex/src/world.rs Cargo.toml

crates/gasnex/src/lib.rs:
crates/gasnex/src/alloc.rs:
crates/gasnex/src/am.rs:
crates/gasnex/src/amo.rs:
crates/gasnex/src/collectives.rs:
crates/gasnex/src/config.rs:
crates/gasnex/src/event.rs:
crates/gasnex/src/mailbox.rs:
crates/gasnex/src/net.rs:
crates/gasnex/src/rank.rs:
crates/gasnex/src/segment.rs:
crates/gasnex/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
