/root/repo/target/debug/deps/fig8_matching-b3fc2b9c3ad1883f.d: crates/bench/benches/fig8_matching.rs

/root/repo/target/debug/deps/fig8_matching-b3fc2b9c3ad1883f: crates/bench/benches/fig8_matching.rs

crates/bench/benches/fig8_matching.rs:
