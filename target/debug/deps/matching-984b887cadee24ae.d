/root/repo/target/debug/deps/matching-984b887cadee24ae.d: crates/matching/src/lib.rs crates/matching/src/dist.rs crates/matching/src/dist_mp.rs crates/matching/src/harness.rs crates/matching/src/sequential.rs

/root/repo/target/debug/deps/libmatching-984b887cadee24ae.rlib: crates/matching/src/lib.rs crates/matching/src/dist.rs crates/matching/src/dist_mp.rs crates/matching/src/harness.rs crates/matching/src/sequential.rs

/root/repo/target/debug/deps/libmatching-984b887cadee24ae.rmeta: crates/matching/src/lib.rs crates/matching/src/dist.rs crates/matching/src/dist_mp.rs crates/matching/src/harness.rs crates/matching/src/sequential.rs

crates/matching/src/lib.rs:
crates/matching/src/dist.rs:
crates/matching/src/dist_mp.rs:
crates/matching/src/harness.rs:
crates/matching/src/sequential.rs:
