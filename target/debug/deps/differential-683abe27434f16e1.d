/root/repo/target/debug/deps/differential-683abe27434f16e1.d: crates/simtest/tests/differential.rs

/root/repo/target/debug/deps/differential-683abe27434f16e1: crates/simtest/tests/differential.rs

crates/simtest/tests/differential.rs:
