/root/repo/target/debug/deps/graphgen-be3dfa6795c2621f.d: crates/graphgen/src/lib.rs crates/graphgen/src/gen.rs crates/graphgen/src/graph.rs crates/graphgen/src/io.rs crates/graphgen/src/partition.rs crates/graphgen/src/presets.rs crates/graphgen/src/rng.rs

/root/repo/target/debug/deps/graphgen-be3dfa6795c2621f: crates/graphgen/src/lib.rs crates/graphgen/src/gen.rs crates/graphgen/src/graph.rs crates/graphgen/src/io.rs crates/graphgen/src/partition.rs crates/graphgen/src/presets.rs crates/graphgen/src/rng.rs

crates/graphgen/src/lib.rs:
crates/graphgen/src/gen.rs:
crates/graphgen/src/graph.rs:
crates/graphgen/src/io.rs:
crates/graphgen/src/partition.rs:
crates/graphgen/src/presets.rs:
crates/graphgen/src/rng.rs:
