/root/repo/target/debug/deps/fig5_gups-151de4e4ae63dd12.d: crates/bench/benches/fig5_gups.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_gups-151de4e4ae63dd12.rmeta: crates/bench/benches/fig5_gups.rs Cargo.toml

crates/bench/benches/fig5_gups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
