/root/repo/target/debug/deps/stress-a7c79e78d793ced4.d: crates/gasnex/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-a7c79e78d793ced4.rmeta: crates/gasnex/tests/stress.rs Cargo.toml

crates/gasnex/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
