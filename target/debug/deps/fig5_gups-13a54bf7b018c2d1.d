/root/repo/target/debug/deps/fig5_gups-13a54bf7b018c2d1.d: crates/bench/benches/fig5_gups.rs

/root/repo/target/debug/deps/fig5_gups-13a54bf7b018c2d1: crates/bench/benches/fig5_gups.rs

crates/bench/benches/fig5_gups.rs:
