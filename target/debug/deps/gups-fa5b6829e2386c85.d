/root/repo/target/debug/deps/gups-fa5b6829e2386c85.d: crates/gups/src/bin/gups.rs

/root/repo/target/debug/deps/gups-fa5b6829e2386c85: crates/gups/src/bin/gups.rs

crates/gups/src/bin/gups.rs:
