/root/repo/target/debug/deps/simtest-650bc314bac11265.d: crates/simtest/src/bin/simtest.rs

/root/repo/target/debug/deps/simtest-650bc314bac11265: crates/simtest/src/bin/simtest.rs

crates/simtest/src/bin/simtest.rs:
