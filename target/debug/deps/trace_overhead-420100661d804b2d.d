/root/repo/target/debug/deps/trace_overhead-420100661d804b2d.d: crates/bench/benches/trace_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_overhead-420100661d804b2d.rmeta: crates/bench/benches/trace_overhead.rs Cargo.toml

crates/bench/benches/trace_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
