/root/repo/target/debug/deps/bench-715646f31d3f8e39.d: crates/bench/src/lib.rs crates/bench/src/criterion.rs

/root/repo/target/debug/deps/bench-715646f31d3f8e39: crates/bench/src/lib.rs crates/bench/src/criterion.rs

crates/bench/src/lib.rs:
crates/bench/src/criterion.rs:
