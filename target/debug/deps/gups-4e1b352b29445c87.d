/root/repo/target/debug/deps/gups-4e1b352b29445c87.d: crates/gups/src/lib.rs crates/gups/src/bucketed.rs crates/gups/src/config.rs crates/gups/src/harness.rs crates/gups/src/rng.rs crates/gups/src/table.rs crates/gups/src/variants.rs Cargo.toml

/root/repo/target/debug/deps/libgups-4e1b352b29445c87.rmeta: crates/gups/src/lib.rs crates/gups/src/bucketed.rs crates/gups/src/config.rs crates/gups/src/harness.rs crates/gups/src/rng.rs crates/gups/src/table.rs crates/gups/src/variants.rs Cargo.toml

crates/gups/src/lib.rs:
crates/gups/src/bucketed.rs:
crates/gups/src/config.rs:
crates/gups/src/harness.rs:
crates/gups/src/rng.rs:
crates/gups/src/table.rs:
crates/gups/src/variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
