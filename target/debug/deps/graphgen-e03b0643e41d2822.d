/root/repo/target/debug/deps/graphgen-e03b0643e41d2822.d: crates/graphgen/src/lib.rs crates/graphgen/src/gen.rs crates/graphgen/src/graph.rs crates/graphgen/src/io.rs crates/graphgen/src/partition.rs crates/graphgen/src/presets.rs crates/graphgen/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libgraphgen-e03b0643e41d2822.rmeta: crates/graphgen/src/lib.rs crates/graphgen/src/gen.rs crates/graphgen/src/graph.rs crates/graphgen/src/io.rs crates/graphgen/src/partition.rs crates/graphgen/src/presets.rs crates/graphgen/src/rng.rs Cargo.toml

crates/graphgen/src/lib.rs:
crates/graphgen/src/gen.rs:
crates/graphgen/src/graph.rs:
crates/graphgen/src/io.rs:
crates/graphgen/src/partition.rs:
crates/graphgen/src/presets.rs:
crates/graphgen/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
