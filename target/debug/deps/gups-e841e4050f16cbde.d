/root/repo/target/debug/deps/gups-e841e4050f16cbde.d: crates/gups/src/bin/gups.rs Cargo.toml

/root/repo/target/debug/deps/libgups-e841e4050f16cbde.rmeta: crates/gups/src/bin/gups.rs Cargo.toml

crates/gups/src/bin/gups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
