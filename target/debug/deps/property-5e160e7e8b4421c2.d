/root/repo/target/debug/deps/property-5e160e7e8b4421c2.d: tests/property.rs

/root/repo/target/debug/deps/property-5e160e7e8b4421c2: tests/property.rs

tests/property.rs:
