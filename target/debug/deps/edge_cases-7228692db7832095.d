/root/repo/target/debug/deps/edge_cases-7228692db7832095.d: crates/core/tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-7228692db7832095.rmeta: crates/core/tests/edge_cases.rs Cargo.toml

crates/core/tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
