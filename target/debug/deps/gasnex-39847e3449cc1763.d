/root/repo/target/debug/deps/gasnex-39847e3449cc1763.d: crates/gasnex/src/lib.rs crates/gasnex/src/alloc.rs crates/gasnex/src/am.rs crates/gasnex/src/amo.rs crates/gasnex/src/collectives.rs crates/gasnex/src/config.rs crates/gasnex/src/event.rs crates/gasnex/src/mailbox.rs crates/gasnex/src/net.rs crates/gasnex/src/rank.rs crates/gasnex/src/segment.rs crates/gasnex/src/world.rs

/root/repo/target/debug/deps/gasnex-39847e3449cc1763: crates/gasnex/src/lib.rs crates/gasnex/src/alloc.rs crates/gasnex/src/am.rs crates/gasnex/src/amo.rs crates/gasnex/src/collectives.rs crates/gasnex/src/config.rs crates/gasnex/src/event.rs crates/gasnex/src/mailbox.rs crates/gasnex/src/net.rs crates/gasnex/src/rank.rs crates/gasnex/src/segment.rs crates/gasnex/src/world.rs

crates/gasnex/src/lib.rs:
crates/gasnex/src/alloc.rs:
crates/gasnex/src/am.rs:
crates/gasnex/src/amo.rs:
crates/gasnex/src/collectives.rs:
crates/gasnex/src/config.rs:
crates/gasnex/src/event.rs:
crates/gasnex/src/mailbox.rs:
crates/gasnex/src/net.rs:
crates/gasnex/src/rank.rs:
crates/gasnex/src/segment.rs:
crates/gasnex/src/world.rs:
