/root/repo/target/debug/deps/trace-299687e55d000133.d: crates/core/tests/trace.rs

/root/repo/target/debug/deps/trace-299687e55d000133: crates/core/tests/trace.rs

crates/core/tests/trace.rs:
