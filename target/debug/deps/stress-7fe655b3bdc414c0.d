/root/repo/target/debug/deps/stress-7fe655b3bdc414c0.d: crates/gasnex/tests/stress.rs

/root/repo/target/debug/deps/stress-7fe655b3bdc414c0: crates/gasnex/tests/stress.rs

crates/gasnex/tests/stress.rs:
