/root/repo/target/debug/deps/edge_cases-8b9e8fc02ad95eb9.d: crates/core/tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-8b9e8fc02ad95eb9: crates/core/tests/edge_cases.rs

crates/core/tests/edge_cases.rs:
