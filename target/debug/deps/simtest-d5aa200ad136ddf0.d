/root/repo/target/debug/deps/simtest-d5aa200ad136ddf0.d: crates/simtest/src/lib.rs

/root/repo/target/debug/deps/libsimtest-d5aa200ad136ddf0.rlib: crates/simtest/src/lib.rs

/root/repo/target/debug/deps/libsimtest-d5aa200ad136ddf0.rmeta: crates/simtest/src/lib.rs

crates/simtest/src/lib.rs:
