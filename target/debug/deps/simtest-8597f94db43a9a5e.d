/root/repo/target/debug/deps/simtest-8597f94db43a9a5e.d: crates/simtest/src/bin/simtest.rs Cargo.toml

/root/repo/target/debug/deps/libsimtest-8597f94db43a9a5e.rmeta: crates/simtest/src/bin/simtest.rs Cargo.toml

crates/simtest/src/bin/simtest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
