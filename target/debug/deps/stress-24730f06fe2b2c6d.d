/root/repo/target/debug/deps/stress-24730f06fe2b2c6d.d: crates/gasnex/tests/stress.rs

/root/repo/target/debug/deps/stress-24730f06fe2b2c6d: crates/gasnex/tests/stress.rs

crates/gasnex/tests/stress.rs:
