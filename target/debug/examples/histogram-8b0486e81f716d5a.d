/root/repo/target/debug/examples/histogram-8b0486e81f716d5a.d: examples/histogram.rs

/root/repo/target/debug/examples/histogram-8b0486e81f716d5a: examples/histogram.rs

examples/histogram.rs:
