/root/repo/target/debug/examples/manual_localization-cfe63c2666b29f57.d: examples/manual_localization.rs

/root/repo/target/debug/examples/manual_localization-cfe63c2666b29f57: examples/manual_localization.rs

examples/manual_localization.rs:
