/root/repo/target/debug/examples/conjoin_graph-7084dc9bece27b9a.d: examples/conjoin_graph.rs

/root/repo/target/debug/examples/conjoin_graph-7084dc9bece27b9a: examples/conjoin_graph.rs

examples/conjoin_graph.rs:
