/root/repo/target/debug/examples/manual_localization-5430c1662e8ad79b.d: examples/manual_localization.rs Cargo.toml

/root/repo/target/debug/examples/libmanual_localization-5430c1662e8ad79b.rmeta: examples/manual_localization.rs Cargo.toml

examples/manual_localization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
