/root/repo/target/debug/examples/stencil-490534374caaa8f3.d: examples/stencil.rs

/root/repo/target/debug/examples/stencil-490534374caaa8f3: examples/stencil.rs

examples/stencil.rs:
