/root/repo/target/debug/examples/completions_tour-e22e8cd8a744c090.d: examples/completions_tour.rs Cargo.toml

/root/repo/target/debug/examples/libcompletions_tour-e22e8cd8a744c090.rmeta: examples/completions_tour.rs Cargo.toml

examples/completions_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
