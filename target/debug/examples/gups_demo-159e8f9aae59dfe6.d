/root/repo/target/debug/examples/gups_demo-159e8f9aae59dfe6.d: examples/gups_demo.rs Cargo.toml

/root/repo/target/debug/examples/libgups_demo-159e8f9aae59dfe6.rmeta: examples/gups_demo.rs Cargo.toml

examples/gups_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
