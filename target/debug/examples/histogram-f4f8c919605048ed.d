/root/repo/target/debug/examples/histogram-f4f8c919605048ed.d: examples/histogram.rs Cargo.toml

/root/repo/target/debug/examples/libhistogram-f4f8c919605048ed.rmeta: examples/histogram.rs Cargo.toml

examples/histogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
