/root/repo/target/debug/examples/conjoin_graph-26a664d9109f98d2.d: examples/conjoin_graph.rs Cargo.toml

/root/repo/target/debug/examples/libconjoin_graph-26a664d9109f98d2.rmeta: examples/conjoin_graph.rs Cargo.toml

examples/conjoin_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
