/root/repo/target/debug/examples/matching_demo-3cc1f7a7b019659e.d: examples/matching_demo.rs Cargo.toml

/root/repo/target/debug/examples/libmatching_demo-3cc1f7a7b019659e.rmeta: examples/matching_demo.rs Cargo.toml

examples/matching_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
