/root/repo/target/debug/examples/stencil-fc26eeb4bf6dfe44.d: examples/stencil.rs Cargo.toml

/root/repo/target/debug/examples/libstencil-fc26eeb4bf6dfe44.rmeta: examples/stencil.rs Cargo.toml

examples/stencil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
