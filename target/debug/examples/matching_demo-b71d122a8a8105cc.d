/root/repo/target/debug/examples/matching_demo-b71d122a8a8105cc.d: examples/matching_demo.rs

/root/repo/target/debug/examples/matching_demo-b71d122a8a8105cc: examples/matching_demo.rs

examples/matching_demo.rs:
