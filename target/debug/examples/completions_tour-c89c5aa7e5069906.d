/root/repo/target/debug/examples/completions_tour-c89c5aa7e5069906.d: examples/completions_tour.rs

/root/repo/target/debug/examples/completions_tour-c89c5aa7e5069906: examples/completions_tour.rs

examples/completions_tour.rs:
