/root/repo/target/debug/examples/gups_demo-95f1e31c756a0701.d: examples/gups_demo.rs

/root/repo/target/debug/examples/gups_demo-95f1e31c756a0701: examples/gups_demo.rs

examples/gups_demo.rs:
