/root/repo/target/debug/examples/quickstart-4b5d8422f7f99d8d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4b5d8422f7f99d8d: examples/quickstart.rs

examples/quickstart.rs:
