//! # eager-notify — reproduction of "Optimization of Asynchronous
//! # Communication Operations through Eager Notifications" (SC 2021)
//!
//! Umbrella crate re-exporting the workspace members; see the README for
//! the repository map and `DESIGN.md` for the reproduction plan.

pub use gasnex;
pub use graphgen;
pub use gups;
pub use matching;
pub use upcr;
