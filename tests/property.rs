//! Randomized-input tests over the core data structures and invariants:
//! future conjoining semantics, the segment allocator, segment byte
//! transfers, the HPCC stream, partitions, and distributed-matching
//! equivalence.
//!
//! Inputs are drawn from [`graphgen::SeededRng`] with fixed seeds — every
//! case is exactly reproducible (the offline replacement for the previous
//! proptest strategies; each loop covers the same input space).

use graphgen::SeededRng;

fn rng(seed: u64) -> SeededRng {
    SeededRng::seed_from_u64(seed)
}

/// Fisher–Yates shuffle driven by the deterministic stream.
fn shuffle<T>(v: &mut [T], r: &mut SeededRng) {
    for i in (1..v.len()).rev() {
        v.swap(i, r.below(i + 1));
    }
}

// ---------------------------------------------------------------------------
// Future conjoining: an arbitrary tree of conjoins over ready and pending
// inputs behaves identically regardless of evaluation order, and the result
// is ready exactly when every pending input has been fulfilled.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Tree {
    Ready,
    Pending(usize),
    Conjoin(Box<Tree>, Box<Tree>),
}

fn random_tree(r: &mut SeededRng, pending: usize, depth: usize) -> Tree {
    if depth == 0 || r.below(3) == 0 {
        if r.below(2) == 0 {
            Tree::Ready
        } else {
            Tree::Pending(r.below(pending))
        }
    } else {
        Tree::Conjoin(
            Box::new(random_tree(r, pending, depth - 1)),
            Box::new(random_tree(r, pending, depth - 1)),
        )
    }
}

fn build_tree(t: &Tree, sources: &[upcr::Promise<()>]) -> upcr::Future<()> {
    match t {
        Tree::Ready => upcr::make_future(),
        Tree::Pending(i) => sources[*i].get_future(),
        Tree::Conjoin(a, b) => upcr::conjoin(build_tree(a, sources), build_tree(b, sources)),
    }
}

fn used_pendings(t: &Tree, out: &mut std::collections::BTreeSet<usize>) {
    match t {
        Tree::Ready => {}
        Tree::Pending(i) => {
            out.insert(*i);
        }
        Tree::Conjoin(a, b) => {
            used_pendings(a, out);
            used_pendings(b, out);
        }
    }
}

#[test]
fn conjoin_tree_readiness_semantics() {
    let mut r = rng(0xC0DE);
    for _case in 0..64 {
        let tree = random_tree(&mut r, 6, 5);
        let mut order: Vec<usize> = (0..6).collect();
        shuffle(&mut order, &mut r);
        // Sometimes fulfill only a prefix first (the subsequence case).
        order.truncate(1 + r.below(6));

        // Build the pending sources outside any runtime (the when_all
        // optimization defaults on; semantics must not depend on it).
        let sources: Vec<upcr::Promise<()>> = (0..6).map(|_| upcr::Promise::new()).collect();
        let fut = build_tree(&tree, &sources);
        let mut needed = std::collections::BTreeSet::new();
        used_pendings(&tree, &mut needed);
        // Promise futures are pending until finalized.
        assert_eq!(fut.is_ready(), needed.is_empty(), "tree {tree:?}");
        // Fulfill in the sampled order; readiness must flip exactly when
        // the last needed source finalizes.
        let mut remaining = needed.clone();
        for i in order {
            if fut.is_ready() {
                break;
            }
            sources[i].finalize();
            remaining.remove(&i);
            assert_eq!(
                fut.is_ready(),
                remaining.is_empty(),
                "after finalizing {i}, remaining {remaining:?}"
            );
        }
        // Finalize any leftovers (the order prefix may omit some).
        for i in remaining.clone() {
            sources[i].finalize();
        }
        assert!(fut.is_ready());
    }
}

#[test]
fn when_all_value_always_carries_the_value() {
    let mut r = rng(0xA11);
    for case in 0..64 {
        let v = r.next_u64();
        let ready_first = case % 2 == 0;
        let p = upcr::Promise::new();
        let unit = p.get_future();
        let valued = upcr::Future::ready(v);
        let f = if ready_first {
            upcr::when_all_value(valued, upcr::make_future())
        } else {
            upcr::when_all_value(valued, unit.clone())
        };
        if ready_first {
            assert!(f.is_ready());
        } else {
            assert!(!f.is_ready());
            p.finalize();
        }
        assert_eq!(f.result(), v);
    }
}

#[test]
fn conjoin_ready_units_collapse_to_shared_cell() {
    // §III-C: conjoining N ready value-less futures must return the rank's
    // shared ready cell — the very cell `make_future()` hands out — with no
    // graph nodes and no cell allocations.
    let cfg = upcr::RuntimeConfig::smp(1)
        .with_version(upcr::LibVersion::V2021_3_6Eager)
        .with_segment_size(1 << 16);
    upcr::launch(cfg, |u| {
        let mut r = rng(0x57A2ED);
        for _case in 0..64 {
            let n = 1 + r.below(16);
            u.reset_stats();
            let f = upcr::conjoin_all((0..n).map(|_| upcr::make_future()));
            assert!(f.is_ready());
            assert!(
                f.ptr_eq(&upcr::make_future()),
                "all-ready conjoin must return the shared ready cell (n = {n})"
            );
            let s = u.stats();
            assert_eq!(s.when_all_fast, n as u64);
            assert_eq!(s.when_all_nodes, 0);
            assert_eq!(s.cell_allocs, 0);
        }
    });

    // Under 2021.3.0 semantics the same chain builds one dependency node per
    // conjoin and the result is a fresh cell, never the shared one.
    let cfg = upcr::RuntimeConfig::smp(1)
        .with_version(upcr::LibVersion::V2021_3_0)
        .with_segment_size(1 << 16);
    upcr::launch(cfg, |u| {
        u.reset_stats();
        let f = upcr::conjoin_all((0..5).map(|_| upcr::make_future()));
        assert!(f.is_ready());
        assert!(!f.ptr_eq(&upcr::make_future()));
        assert_eq!(u.stats().when_all_nodes, 5);
    });
}

#[test]
fn conjoin_single_pending_returns_contributing_future() {
    // Exactly one pending input among N: the conjoined result *is* that
    // input (the same cell), wherever it sits in the chain — the other
    // fast-path case of the paper's elision.
    let mut r = rng(0x1FA7E);
    for _case in 0..64 {
        let n = 2 + r.below(14);
        let pos = r.below(n);
        let p = upcr::Promise::new();
        let pending = p.get_future();
        let f = upcr::conjoin_all((0..n).map(|i| {
            if i == pos {
                pending.clone()
            } else {
                upcr::make_future()
            }
        }));
        assert!(!f.is_ready());
        assert!(
            f.ptr_eq(&pending),
            "single-pending conjoin must pass the input through (pos {pos} of {n})"
        );
        p.finalize();
        assert!(f.is_ready());
    }
}

#[test]
fn conjoin_result_independent_of_fulfillment_order() {
    // Two instantiations of the same random conjoin tree, fulfilled in two
    // independently shuffled orders, agree on the outcome: both become ready
    // and a value riding on top via `when_all_value` arrives unchanged.
    const PENDING: usize = 6;
    let mut r = rng(0x0D3A);
    for _case in 0..64 {
        let tree = random_tree(&mut r, PENDING, 4);
        let v = r.next_u64();
        let mut results = Vec::new();
        for _run in 0..2 {
            let sources: Vec<upcr::Promise<()>> =
                (0..PENDING).map(|_| upcr::Promise::new()).collect();
            let f = upcr::when_all_value(upcr::Future::ready(v), build_tree(&tree, &sources));
            let mut order: Vec<usize> = (0..PENDING).collect();
            shuffle(&mut order, &mut r);
            for i in order {
                sources[i].finalize();
            }
            assert!(f.is_ready(), "tree {tree:?}");
            results.push(f.result());
        }
        assert_eq!(results[0], results[1], "tree {tree:?}");
        assert_eq!(results[0], v);
    }
}

// ---------------------------------------------------------------------------
// Segment allocator: arbitrary alloc/free interleavings never hand out
// overlapping blocks, respect alignment, and coalesce back to one block.
// ---------------------------------------------------------------------------

#[test]
fn allocator_no_overlap_and_full_coalesce() {
    let mut r = rng(0xA110C);
    for _case in 0..128 {
        let n_ops = 1 + r.below(59);
        let cap = 1 << 14;
        let a = gasnex::SegAlloc::new(cap);
        let mut live: Vec<(usize, usize)> = Vec::new(); // (offset, size)
        for _ in 0..n_ops {
            let size = 1 + r.below(255);
            let align = 8usize << r.below(4);
            match a.alloc(size, align) {
                Ok(off) => {
                    assert_eq!(off % align, 0, "misaligned block");
                    let end = off + size;
                    for &(lo, ls) in &live {
                        assert!(
                            end <= lo || off >= lo + ls,
                            "overlap: [{off},{end}) vs [{lo},{})",
                            lo + ls
                        );
                    }
                    live.push((off, size));
                }
                Err(e) => {
                    // Exhaustion must report a coherent largest-free.
                    assert!(e.largest_free <= cap);
                }
            }
            // Free the oldest half of the time (by size parity, matching the
            // original deterministic schedule).
            if size.is_multiple_of(2) && !live.is_empty() {
                let (off, _) = live.remove(0);
                a.dealloc(off);
            }
        }
        for (off, _) in live {
            a.dealloc(off);
        }
        assert_eq!(a.live_blocks(), 0);
        assert_eq!(a.free_bytes(), a.capacity());
        // After full free, one maximal allocation must succeed.
        assert!(a.alloc(a.capacity(), 8).is_ok());
    }
}

#[test]
fn segment_copy_roundtrip() {
    let mut r = rng(0x5E6);
    for _case in 0..128 {
        let off = r.below(97);
        let len = r.below(160);
        let data: Vec<u8> = (0..len).map(|_| r.next_u64() as u8).collect();
        let seg = gasnex::Segment::new(512);
        seg.copy_in(off, &data);
        let mut out = vec![0u8; data.len()];
        seg.copy_out(off, &mut out);
        assert_eq!(out, data);
    }
}

#[test]
fn segment_scalars_do_not_clobber() {
    let mut r = rng(0x5CA1A);
    for _case in 0..128 {
        let woff = r.below(32) * 8;
        let v = r.next_u64();
        let b = r.next_u64() as u8;
        let seg = gasnex::Segment::new(512);
        seg.write_scalar(woff, 8, v);
        // A byte write just past the word must leave the word intact.
        seg.write_scalar(woff + 8, 1, b as u64);
        assert_eq!(seg.read_scalar(woff, 8), v);
        assert_eq!(seg.read_scalar(woff + 8, 1), b as u64);
    }
}

#[test]
fn hpcc_starts_consistency() {
    use gups::rng::{next, starts};
    let mut r = rng(0x477C);
    for _case in 0..128 {
        let k = (r.next_u64() % 1_000_000_000) as i64;
        assert_eq!(starts(k + 1), next(starts(k)), "k = {k}");
    }
    assert_eq!(starts(1), next(starts(0)));
}

#[test]
fn global_ptr_encode_roundtrip() {
    let p = upcr::GlobalPtr::<u64>::null();
    assert!(upcr::GlobalPtr::<u64>::decode(p.encode()).is_null());
    let mut r = rng(0x6107);
    for _case in 0..128 {
        let rank = (r.next_u64() % 1_000_000) as u32;
        let off8 = r.next_u64() as usize & ((1 << 37) - 1);
        // Non-null pointers roundtrip exactly (offset is 8-aligned words).
        let q: upcr::GlobalPtr<u64> = decode_helper(rank, off8 * 8);
        assert_eq!(upcr::GlobalPtr::<u64>::decode(q.encode()), q);
    }
}

#[test]
fn block_partition_owner_matches_range() {
    let mut r = rng(0xB10C);
    for _case in 0..128 {
        let n = 1 + r.below(9_999);
        let ranks = 1 + r.below(63);
        if ranks > n {
            continue;
        }
        let p = graphgen::BlockPartition::new(n, ranks);
        let mut total = 0;
        for rk in 0..ranks {
            let range = p.range(rk);
            total += range.len();
            if !range.is_empty() {
                assert_eq!(p.owner(range.start), rk);
                assert_eq!(p.owner(range.end - 1), rk);
            }
        }
        assert_eq!(total, n);
    }
}

#[test]
fn pair_weight_symmetric() {
    let mut r = rng(0x9A13);
    for _case in 0..256 {
        let u = r.next_u64() as u32;
        let v = r.next_u64() as u32;
        assert_eq!(graphgen::pair_weight(u, v), graphgen::pair_weight(v, u));
    }
}

// Helper: construct a global pointer via encode/decode (the only public
// constructor besides runtime allocation).
fn decode_helper(rank: u32, off: usize) -> upcr::GlobalPtr<u64> {
    upcr::GlobalPtr::<u64>::decode(((rank as u64) << 40) | off as u64)
}

// ---------------------------------------------------------------------------
// Distributed matching equals sequential greedy on random graphs (runtime
// launches are expensive; a handful of cases suffices).
// ---------------------------------------------------------------------------

#[test]
fn distributed_matching_equals_greedy() {
    let mut r = rng(0x3A7C4);
    for _case in 0..6 {
        let seed = r.next_u64();
        let n = 50 + r.below(250);
        let g = graphgen::powerlaw(n, 2, seed);
        let seq = matching::greedy(&g);
        let res = matching::benchmark(2, upcr::LibVersion::V2021_3_6Eager, &g);
        assert_eq!(res.matched, seq.edges(), "seed {seed}, n {n}");
        assert!((res.weight - seq.weight).abs() < 1e-9);
    }
}

#[test]
fn gups_amo_exact_under_random_config() {
    let mut r = rng(0x6095);
    for _case in 0..6 {
        let log2 = 8 + r.below(4) as u32;
        let batch = 1 + r.below(63);
        let cfg = gups::GupsConfig {
            log2_table: log2,
            updates_per_word: 1,
            batch,
            verify: true,
        };
        let res = gups::benchmark(
            2,
            upcr::LibVersion::V2021_3_6Eager,
            &cfg,
            gups::Variant::AmoFuture,
        );
        assert_eq!(res.errors, 0, "log2 {log2}, batch {batch}");
    }
}

// ---------------------------------------------------------------------------
// Serialization, strided shapes, and reductions.
// ---------------------------------------------------------------------------

#[test]
fn serde_roundtrip_tuples() {
    use upcr::SerDe;
    let mut r = rng(0x5E2D);
    for _case in 0..128 {
        let a = r.next_u64();
        let b = r.next_u64() as i32;
        let len = r.below(41);
        let s: String = (0..len)
            .map(|_| char::from(b' ' + (r.below(95)) as u8))
            .collect();
        let v = (a, b, s.clone());
        let back = <(u64, i32, String)>::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(back, v);
    }
}

#[test]
fn serde_roundtrip_nested() {
    use upcr::SerDe;
    let mut r = rng(0x2E57);
    for _case in 0..128 {
        let len = r.below(20);
        let v: Vec<Option<u32>> = (0..len)
            .map(|_| {
                if r.below(2) == 0 {
                    None
                } else {
                    Some(r.next_u64() as u32)
                }
            })
            .collect();
        let back = Vec::<Option<u32>>::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(back, v);
    }
}

#[test]
fn serde_rejects_random_truncation() {
    use upcr::SerDe;
    let mut r = rng(0x72C);
    for _case in 0..128 {
        let a = r.next_u64();
        let cut = r.below(8);
        let bytes = (a, a).to_bytes();
        let cut_len = bytes.len() - 1 - cut;
        assert!(<(u64, u64)>::from_bytes(&bytes[..cut_len]).is_err());
    }
}

#[test]
fn reduce_ops_agree_with_fold() {
    use upcr::{ReduceOp, ReduceVal};
    let mut r = rng(0x2ED0);
    for _case in 0..128 {
        let len = 1 + r.below(15);
        let vals: Vec<u32> = (0..len).map(|_| r.next_u64() as u32).collect();
        for op in [
            ReduceOp::Plus,
            ReduceOp::Min,
            ReduceOp::Max,
            ReduceOp::BitXor,
        ] {
            let mut acc = u32::identity(op);
            for &v in &vals {
                acc = u32::apply(op, acc, v);
            }
            let expect = match op {
                ReduceOp::Plus => vals.iter().fold(0u32, |a, &b| a.wrapping_add(b)),
                ReduceOp::Min => *vals.iter().min().unwrap(),
                ReduceOp::Max => *vals.iter().max().unwrap(),
                ReduceOp::BitXor => vals.iter().fold(0, |a, &b| a ^ b),
                _ => unreachable!(),
            };
            assert_eq!(acc, expect);
        }
    }
}

#[test]
fn strided_roundtrip_random_shapes() {
    let mut r = rng(0x57D);
    for _case in 0..8 {
        let block_len = 1 + r.below(5);
        let extra = r.below(5);
        let blocks = 1 + r.below(5);
        let seed = r.next_u64();
        let shape = upcr::Strided {
            block_len,
            stride: block_len + extra,
            blocks,
        };
        let total = shape.total();
        let area = shape.stride * blocks + block_len;
        let data: Vec<u64> = (0..total as u64)
            .map(|i| i.wrapping_mul(seed | 1))
            .collect();
        let cfg = upcr::RuntimeConfig::smp(1).with_segment_size(1 << 16);
        let out = upcr::launch(cfg, |u| {
            let arr = u.new_array::<u64>(area);
            u.rput_strided(&data, arr, shape).wait();
            u.rget_strided(arr, shape).wait()
        });
        assert_eq!(&out[0], &data);
    }
}

// ---------------------------------------------------------------------------
// Notification objects: badge coalescing is a set union (idempotent,
// commutative, associative), `wait_signal` masks select exactly the
// requested bits, and the Idle/Waiting/Active state machine never loses a
// badge under seeded cross-thread interleavings.
// ---------------------------------------------------------------------------

#[test]
fn badge_coalescing_is_order_and_duplicate_insensitive() {
    use gasnex::{NotifyTable, Rank};
    let mut r = rng(0xBAD6E);
    for _case in 0..128 {
        let n = 1 + r.below(24);
        let badges: Vec<u64> = (0..n).map(|_| 1u64 << r.below(64)).collect();
        let union: u64 = badges.iter().fold(0, |m, &b| m | b);

        // Commutativity/associativity: any posting order yields the union.
        let mut shuffled = badges.clone();
        shuffle(&mut shuffled, &mut r);
        let a = NotifyTable::new(1, 1);
        let b = NotifyTable::new(1, 1);
        for &x in &badges {
            a.post(Rank(0), 0, x);
        }
        for &x in &shuffled {
            b.post(Rank(0), 0, x);
        }
        // Idempotence: replaying a random subset (a duplicated delivery
        // that slipped past dedup would look like this) changes nothing.
        for &x in &badges {
            if r.below(2) == 0 {
                b.post(Rank(0), 0, x);
            }
        }
        assert_eq!(a.try_consume(Rank(0), 0, u64::MAX), union);
        assert_eq!(b.try_consume(Rank(0), 0, u64::MAX), union);
        // Consumption drains: the word returns to Idle.
        assert_eq!(a.try_consume(Rank(0), 0, u64::MAX), 0);
        assert_eq!(b.try_consume(Rank(0), 0, u64::MAX), 0);
    }
}

#[test]
fn wait_mask_selects_exactly_the_requested_bits() {
    use gasnex::{NotifyTable, Rank};
    let mut r = rng(0x3A5C);
    for _case in 0..128 {
        let t = NotifyTable::new(1, 1);
        let mut posted = 0u64;
        for _ in 0..1 + r.below(12) {
            let b = r.next_u64();
            if b == 0 {
                continue;
            }
            posted |= b;
            t.post(Rank(0), 0, b);
        }
        let mask = r.next_u64();
        let got = t.try_consume(Rank(0), 0, mask);
        assert_eq!(got, posted & mask, "consume returns exactly mask ∩ word");
        // Unselected bits stay behind for a later wait.
        assert_eq!(t.try_consume(Rank(0), 0, u64::MAX), posted & !mask);
    }
}

#[test]
fn waiter_state_machine_never_loses_a_badge_under_interleaving() {
    // Poster threads race a consuming waiter through every transition —
    // Idle → Active (post before wait), Active → Idle (consume), and
    // Waiting → Active → wake (post lands while a waiter is registered).
    // Whatever the interleaving (seeded per case), the consumed union must
    // equal the posted union: no badge is lost and none invented.
    use gasnex::{EventCore, NotifyTable, Rank};
    use std::sync::Arc;
    let mut r = rng(0x1A7E27);
    for _case in 0..24 {
        let ranks = 2 + r.below(3);
        let t = Arc::new(NotifyTable::new(ranks, 2));
        // Distinct badge bits: each is posted exactly once, so a consumed
        // bit reappearing can only mean the state machine re-delivered it.
        let n_posts = 1 + r.below(15);
        let mut positions: Vec<usize> = (0..63).collect();
        shuffle(&mut positions, &mut r);
        let badges: Vec<u64> = positions[..n_posts].iter().map(|&p| 1u64 << p).collect();
        let union: u64 = badges.iter().fold(0, |m, &b| m | b);
        let delays: Vec<u64> = (0..n_posts).map(|_| r.below(300) as u64).collect();

        let t2 = Arc::clone(&t);
        let b2 = badges.clone();
        let poster = std::thread::spawn(move || {
            for (i, &b) in b2.iter().enumerate() {
                if delays[i] > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(delays[i]));
                }
                t2.post(Rank(0), 0, b);
            }
        });

        let mut seen = 0u64;
        while seen != union {
            let got = t.try_consume(Rank(0), 0, u64::MAX);
            assert_eq!(got & seen, 0, "a consumed badge reappeared");
            seen |= got;
            if seen == union {
                break;
            }
            // Park like wait_signal does; a post racing the registration
            // is caught under the word lock and signals immediately.
            let ev = EventCore::new();
            t.register_waiter(Rank(0), 0, !seen, Arc::clone(&ev));
            let fired = ev.park(std::time::Duration::from_secs(10));
            t.clear_waiter(Rank(0), 0);
            assert!(fired, "waiter starved with badges still outstanding");
        }
        poster.join().unwrap();
        // Everything was consumed exactly once; the word ends Idle.
        assert_eq!(seen, union);
        assert_eq!(t.try_consume(Rank(0), 0, u64::MAX), 0);
    }
}

#[test]
fn vector_reduce_matches_scalar() {
    let mut r = rng(0x7EC);
    for _case in 0..8 {
        let len = 1 + r.below(23);
        let ranks = 1 + r.below(4);
        use upcr::ReduceOp;
        let cfg = upcr::RuntimeConfig::smp(ranks).with_segment_size(1 << 18);
        let out = upcr::launch(cfg, move |u| {
            let vals: Vec<u64> = (0..len as u64).map(|i| i + u.rank_me() as u64).collect();
            let vec_sum = u.reduce_all_vec(&vals, ReduceOp::Plus);
            let scalar: Vec<u64> = vals
                .iter()
                .map(|&v| u.reduce_all(v, ReduceOp::Plus))
                .collect();
            (vec_sum, scalar)
        });
        let (vec_sum, scalar) = &out[0];
        assert_eq!(vec_sum, scalar);
    }
}
