//! Property-based tests (proptest) over the core data structures and
//! invariants: future conjoining semantics, the segment allocator, segment
//! byte transfers, the HPCC stream, partitions, and distributed-matching
//! equivalence.

use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Future conjoining: an arbitrary tree of conjoins over ready and pending
// inputs behaves identically regardless of evaluation order, and the result
// is ready exactly when every pending input has been fulfilled.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Tree {
    Ready,
    Pending(usize),
    Conjoin(Box<Tree>, Box<Tree>),
}

fn tree_strategy(pending: usize) -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        Just(Tree::Ready),
        (0..pending).prop_map(Tree::Pending),
    ];
    leaf.prop_recursive(5, 32, 2, |inner| {
        (inner.clone(), inner).prop_map(|(a, b)| Tree::Conjoin(Box::new(a), Box::new(b)))
    })
}

fn used_pendings(t: &Tree, out: &mut std::collections::BTreeSet<usize>) {
    match t {
        Tree::Ready => {}
        Tree::Pending(i) => {
            out.insert(*i);
        }
        Tree::Conjoin(a, b) => {
            used_pendings(a, out);
            used_pendings(b, out);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conjoin_tree_readiness_semantics(tree in tree_strategy(6), order in proptest::sample::subsequence((0..6usize).collect::<Vec<_>>(), 6)) {
        // Build the pending sources outside any runtime (the when_all
        // optimization defaults on; semantics must not depend on it).
        let sources: Vec<upcr::Promise<()>> = (0..6).map(|_| upcr::Promise::new()).collect();
        fn build(t: &Tree, sources: &[upcr::Promise<()>]) -> upcr::Future<()> {
            match t {
                Tree::Ready => upcr::make_future(),
                Tree::Pending(i) => sources[*i].get_future(),
                Tree::Conjoin(a, b) => upcr::conjoin(build(a, sources), build(b, sources)),
            }
        }
        let fut = build(&tree, &sources);
        let mut needed = std::collections::BTreeSet::new();
        used_pendings(&tree, &mut needed);
        // Promise futures are pending until finalized.
        prop_assert_eq!(fut.is_ready(), needed.is_empty());
        // Fulfill in the sampled order; readiness must flip exactly when
        // the last needed source finalizes.
        let mut remaining = needed.clone();
        for i in order {
            if fut.is_ready() { break; }
            sources[i].finalize();
            remaining.remove(&i);
            prop_assert_eq!(fut.is_ready(), remaining.is_empty(),
                "after finalizing {}, remaining {:?}", i, remaining);
        }
        // Finalize any leftovers (subsequence may omit some).
        for i in remaining.clone() {
            sources[i].finalize();
        }
        prop_assert!(fut.is_ready());
    }

    #[test]
    fn when_all_value_always_carries_the_value(v in any::<u64>(), ready_first in any::<bool>()) {
        let p = upcr::Promise::new();
        let unit = p.get_future();
        let valued = upcr::Future::ready(v);
        let f = if ready_first {
            upcr::when_all_value(valued, upcr::make_future())
        } else {
            upcr::when_all_value(valued, unit.clone())
        };
        if ready_first {
            prop_assert!(f.is_ready());
        } else {
            prop_assert!(!f.is_ready());
            p.finalize();
        }
        prop_assert_eq!(f.result(), v);
    }
}

// ---------------------------------------------------------------------------
// Segment allocator: arbitrary alloc/free interleavings never hand out
// overlapping blocks, respect alignment, and coalesce back to one block.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn allocator_no_overlap_and_full_coalesce(
        ops in proptest::collection::vec((1usize..256, 0usize..4), 1..60)
    ) {
        let cap = 1 << 14;
        let a = gasnex::SegAlloc::new(cap);
        let mut live: Vec<(usize, usize)> = Vec::new(); // (offset, size)
        for (size, align_pow) in ops {
            let align = 8usize << align_pow;
            match a.alloc(size, align) {
                Ok(off) => {
                    prop_assert_eq!(off % align, 0, "misaligned block");
                    let end = off + size;
                    for &(lo, ls) in &live {
                        prop_assert!(end <= lo || off >= lo + ls,
                            "overlap: [{off},{end}) vs [{lo},{})", lo + ls);
                    }
                    live.push((off, size));
                }
                Err(e) => {
                    // Exhaustion must report a coherent largest-free.
                    prop_assert!(e.largest_free <= cap);
                }
            }
            // Randomly free the oldest half of the time (deterministic by
            // parity of size to stay reproducible).
            if size % 2 == 0 && !live.is_empty() {
                let (off, _) = live.remove(0);
                a.dealloc(off);
            }
        }
        for (off, _) in live {
            a.dealloc(off);
        }
        prop_assert_eq!(a.live_blocks(), 0);
        prop_assert_eq!(a.free_bytes(), a.capacity());
        // After full free, one maximal allocation must succeed.
        prop_assert!(a.alloc(a.capacity(), 8).is_ok());
    }

    #[test]
    fn segment_copy_roundtrip(off in 0usize..97, data in proptest::collection::vec(any::<u8>(), 0..160)) {
        let seg = gasnex::Segment::new(512);
        seg.copy_in(off, &data);
        let mut out = vec![0u8; data.len()];
        seg.copy_out(off, &mut out);
        prop_assert_eq!(out, data);
    }

    #[test]
    fn segment_scalars_do_not_clobber(off8 in 0usize..32, v in any::<u64>(), b in any::<u8>()) {
        let seg = gasnex::Segment::new(512);
        let woff = off8 * 8;
        seg.write_scalar(woff, 8, v);
        // A byte write just past the word must leave the word intact.
        seg.write_scalar(woff + 8, 1, b as u64);
        prop_assert_eq!(seg.read_scalar(woff, 8), v);
        prop_assert_eq!(seg.read_scalar(woff + 8, 1), b as u64);
    }

    #[test]
    fn hpcc_starts_consistency(k in 0i64..1_000_000_000) {
        use gups::rng::{next, starts};
        prop_assert_eq!(starts(k + 1), next(starts(k)));
    }

    #[test]
    fn global_ptr_encode_roundtrip(rank in 0u32..1_000_000, off8 in 0usize..(1usize << 37)) {
        let p = upcr::GlobalPtr::<u64>::null();
        prop_assert!(upcr::GlobalPtr::<u64>::decode(p.encode()).is_null());
        // Non-null pointers roundtrip exactly (offset is 8-aligned words).
        let q: upcr::GlobalPtr<u64> = decode_helper(rank, off8 * 8);
        prop_assert_eq!(upcr::GlobalPtr::<u64>::decode(q.encode()), q);
    }

    #[test]
    fn block_partition_owner_matches_range(n in 1usize..10_000, ranks in 1usize..64) {
        prop_assume!(ranks <= n);
        let p = graphgen::BlockPartition::new(n, ranks);
        let mut total = 0;
        for r in 0..ranks {
            let range = p.range(r);
            total += range.len();
            if !range.is_empty() {
                prop_assert_eq!(p.owner(range.start), r);
                prop_assert_eq!(p.owner(range.end - 1), r);
            }
        }
        prop_assert_eq!(total, n);
    }

    #[test]
    fn pair_weight_symmetric(u in any::<u32>(), v in any::<u32>()) {
        prop_assert_eq!(graphgen::pair_weight(u, v), graphgen::pair_weight(v, u));
    }
}

// Helper: construct a global pointer via encode/decode (the only public
// constructor besides runtime allocation).
fn decode_helper(rank: u32, off: usize) -> upcr::GlobalPtr<u64> {
    upcr::GlobalPtr::<u64>::decode(((rank as u64) << 40) | off as u64)
}

// ---------------------------------------------------------------------------
// Distributed matching equals sequential greedy on random graphs (runtime
// launches are expensive; a handful of cases suffices).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn distributed_matching_equals_greedy(seed in any::<u64>(), n in 50usize..300) {
        let g = graphgen::powerlaw(n, 2, seed);
        let seq = matching::greedy(&g);
        let r = matching::benchmark(2, upcr::LibVersion::V2021_3_6Eager, &g);
        prop_assert_eq!(r.matched, seq.edges());
        prop_assert!((r.weight - seq.weight).abs() < 1e-9);
    }

    #[test]
    fn gups_amo_exact_under_random_config(log2 in 8u32..12, batch in 1usize..64) {
        let cfg = gups::GupsConfig { log2_table: log2, updates_per_word: 1, batch, verify: true };
        let r = gups::benchmark(2, upcr::LibVersion::V2021_3_6Eager, &cfg, gups::Variant::AmoFuture);
        prop_assert_eq!(r.errors, 0);
    }
}

// ---------------------------------------------------------------------------
// Serialization, strided shapes, and reductions.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serde_roundtrip_tuples(a in any::<u64>(), b in any::<i32>(), s in ".{0,40}") {
        use upcr::SerDe;
        let v = (a, b, s.clone());
        let back = <(u64, i32, String)>::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn serde_roundtrip_nested(v in proptest::collection::vec(
        proptest::option::of(any::<u32>()), 0..20))
    {
        use upcr::SerDe;
        let back = Vec::<Option<u32>>::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn serde_rejects_random_truncation(a in any::<u64>(), cut in 0usize..8) {
        use upcr::SerDe;
        let bytes = (a, a).to_bytes();
        let cut_len = bytes.len() - 1 - cut;
        prop_assert!(<(u64, u64)>::from_bytes(&bytes[..cut_len]).is_err());
    }

    #[test]
    fn reduce_ops_agree_with_fold(vals in proptest::collection::vec(any::<u32>(), 1..16)) {
        use upcr::{ReduceOp, ReduceVal};
        for op in [ReduceOp::Plus, ReduceOp::Min, ReduceOp::Max, ReduceOp::BitXor] {
            let mut acc = u32::identity(op);
            for &v in &vals {
                acc = u32::apply(op, acc, v);
            }
            let expect = match op {
                ReduceOp::Plus => vals.iter().fold(0u32, |a, &b| a.wrapping_add(b)),
                ReduceOp::Min => *vals.iter().min().unwrap(),
                ReduceOp::Max => *vals.iter().max().unwrap(),
                ReduceOp::BitXor => vals.iter().fold(0, |a, &b| a ^ b),
                _ => unreachable!(),
            };
            prop_assert_eq!(acc, expect);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn strided_roundtrip_random_shapes(
        block_len in 1usize..6, extra in 0usize..5, blocks in 1usize..6, seed in any::<u64>())
    {
        let shape = upcr::Strided { block_len, stride: block_len + extra, blocks };
        let total = shape.total();
        let area = shape.stride * blocks + block_len;
        let data: Vec<u64> = (0..total as u64).map(|i| i.wrapping_mul(seed | 1)).collect();
        let cfg = upcr::RuntimeConfig::smp(1).with_segment_size(1 << 16);
        let out = upcr::launch(cfg, |u| {
            let arr = u.new_array::<u64>(area);
            u.rput_strided(&data, arr, shape).wait();
            u.rget_strided(arr, shape).wait()
        });
        prop_assert_eq!(&out[0], &data);
    }

    #[test]
    fn vector_reduce_matches_scalar(len in 1usize..24, ranks in 1usize..5) {
        use upcr::ReduceOp;
        let cfg = upcr::RuntimeConfig::smp(ranks).with_segment_size(1 << 18);
        let out = upcr::launch(cfg, move |u| {
            let vals: Vec<u64> = (0..len as u64).map(|i| i + u.rank_me() as u64).collect();
            let vec_sum = u.reduce_all_vec(&vals, ReduceOp::Plus);
            let scalar: Vec<u64> =
                vals.iter().map(|&v| u.reduce_all(v, ReduceOp::Plus)).collect();
            (vec_sum, scalar)
        });
        let (vec_sum, scalar) = &out[0];
        prop_assert_eq!(vec_sum, scalar);
    }
}
