//! Cross-crate integration: the full stack (gasnex → upcr → applications)
//! exercised through the public API, the way the benchmarks use it.

use graphgen::{LocalityStats, Preset};
use gups::{GupsConfig, Variant};
use upcr::{launch, LibVersion, RuntimeConfig};

#[test]
fn gups_all_variants_all_versions_smoke() {
    let cfg = GupsConfig {
        log2_table: 12,
        updates_per_word: 2,
        batch: 32,
        verify: true,
    };
    for variant in Variant::ALL {
        for version in LibVersion::ALL {
            let r = gups::benchmark(2, version, &cfg, variant);
            assert!(r.seconds > 0.0);
            assert_eq!(r.updates, cfg.total_updates());
            // Atomics exact; racy variants bounded.
            match variant {
                Variant::AmoPromise | Variant::AmoFuture => {
                    assert_eq!(r.errors, 0, "{version} {}", variant.name())
                }
                _ => assert!(r.error_rate() < 0.25, "{version} {}", variant.name()),
            }
        }
    }
}

#[test]
fn matching_presets_equal_greedy_end_to_end() {
    for preset in Preset::ALL {
        let g = preset.generate(0.02);
        let seq = matching::greedy(&g);
        let r = matching::benchmark(4, LibVersion::V2021_3_6Eager, &g);
        assert_eq!(r.matched, seq.edges(), "{}", preset.name());
        assert!((r.weight - seq.weight).abs() < 1e-9, "{}", preset.name());
    }
}

#[test]
fn matching_rma_read_mix_tracks_locality() {
    // The fraction of RMA (vs manually-localized) reads in the solver must
    // follow the input's locality profile — this is the mechanism behind
    // the Figure 8 speedup ordering.
    let mut fractions = Vec::new();
    for preset in [Preset::Channel, Preset::Youtube] {
        let g = preset.generate(0.05);
        let rt = RuntimeConfig::mpi(4, 4).with_segment_size(1 << 22);
        let stats = launch(rt, |u| matching::run(u, &g).0.stats);
        let s = stats[0];
        let frac = s.rma_reads as f64 / (s.rma_reads + s.local_reads).max(1) as f64;
        fractions.push((preset, frac));
    }
    let channel = fractions[0].1;
    let youtube = fractions[1].1;
    assert!(
        youtube > channel + 0.3,
        "youtube RMA fraction {youtube:.2} must far exceed channel {channel:.2}"
    );
}

#[test]
fn locality_stats_consistent_with_simulated_topology() {
    // graphgen's static locality measurement and the runtime's dynamic
    // addressability must agree.
    let g = Preset::Random.generate(0.02);
    let ranks = 4;
    let stats = LocalityStats::measure(&g, ranks, 2);
    assert!(
        stats.cross_node > 0.0,
        "two simulated nodes must split some edges"
    );
    let single = LocalityStats::measure(&g, ranks, ranks);
    assert_eq!(single.cross_node, 0.0);
    assert!(
        (single.same_rank - stats.same_rank).abs() < 1e-12,
        "rank split independent of nodes"
    );
}

#[test]
fn paper_claims_hold_structurally() {
    // The paper's qualitative claims, checked via runtime statistics
    // rather than timing (timing shapes are the bench harness's job).
    let cfg_ranks = 2;
    // 1. Eager local RMA: no cell allocation, no deferred traffic.
    launch(
        RuntimeConfig::smp(cfg_ranks).with_version(LibVersion::V2021_3_6Eager),
        |u| {
            let p = u.new_::<u64>(0);
            u.reset_stats();
            for i in 0..100 {
                u.rput(i, p).wait();
            }
            let s = u.stats();
            assert_eq!(s.cell_allocs, 0);
            assert_eq!(s.deferred_enqueued, 0);
            assert_eq!(s.eager_notifications, 100);
            u.barrier();
        },
    );
    // 2. Deferred local RMA: one cell + one queue entry per op.
    launch(
        RuntimeConfig::smp(cfg_ranks).with_version(LibVersion::V2021_3_6Defer),
        |u| {
            let p = u.new_::<u64>(0);
            u.reset_stats();
            for i in 0..100 {
                u.rput(i, p).wait();
            }
            let s = u.stats();
            assert_eq!(s.cell_allocs, 100);
            assert_eq!(s.deferred_enqueued, 100);
            u.barrier();
        },
    );
    // 3. 2021.3.0 adds the extra allocation on top.
    launch(
        RuntimeConfig::smp(cfg_ranks).with_version(LibVersion::V2021_3_0),
        |u| {
            let p = u.new_::<u64>(0);
            u.reset_stats();
            for i in 0..100 {
                u.rput(i, p).wait();
            }
            assert_eq!(u.stats().legacy_extra_allocs, 100);
            u.barrier();
        },
    );
    // 4. Off-node operations never notify eagerly, in any version.
    launch(
        RuntimeConfig::udp(2, 1).with_version(LibVersion::V2021_3_6Eager),
        |u| {
            let mine = u.new_::<u64>(0);
            let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
            u.reset_stats();
            if u.rank_me() == 0 {
                let f = u.rput(1, ptrs[1]);
                assert!(!f.is_ready());
                f.wait();
                let s = u.stats();
                assert_eq!(s.eager_notifications, 0);
                assert_eq!(s.net_injected, 1);
            }
            u.barrier();
        },
    );
}

#[test]
fn hpcc_rng_is_the_specified_stream() {
    // Spot values from the recurrence itself plus positional consistency.
    use gups::rng::{next, starts};
    let mut v = 1u64;
    for _ in 0..64 {
        v = next(v);
    }
    assert_eq!(starts(64), v);
    // The stream visits both halves of the index space quickly.
    let mask = (1u64 << 20) - 1;
    let mut high = false;
    let mut low = false;
    let mut r = starts(0);
    for _ in 0..1000 {
        r = next(r);
        if r & mask > mask / 2 {
            high = true;
        } else {
            low = true;
        }
    }
    assert!(high && low);
}

#[test]
fn umbrella_reexports_work() {
    // The root crate exposes the full stack.
    let _ = eager_notify::upcr::LibVersion::ALL;
    let g = eager_notify::graphgen::mesh3d(3, 3, 3);
    assert_eq!(g.n, 27);
    let _ = eager_notify::gups::GupsConfig::default();
}
